#include "classify/path_classifier.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"

namespace lcl {
namespace {

TEST(PathClassifier, TrivialIsConstant) {
  const auto result = classify_on_paths(problems::trivial(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kConstant);
  EXPECT_TRUE(result.solvable_for_all_lengths);
  EXPECT_EQ(result.zero_round_collapse_step, 0);
}

TEST(PathClassifier, OrientationIsConstant) {
  const auto result = classify_on_paths(problems::any_orientation(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kConstant);
  EXPECT_GE(result.zero_round_collapse_step, 1);
}

TEST(PathClassifier, ColoringIsLogStar) {
  for (int colors : {3, 4}) {
    const auto result = classify_on_paths(problems::coloring(colors, 2));
    EXPECT_EQ(result.complexity, CycleComplexity::kLogStar) << colors;
    EXPECT_TRUE(result.solvable_for_all_lengths);
  }
}

TEST(PathClassifier, TwoColoringIsGlobalDespiteAllLengthsSolvable) {
  // The canonical trap: 2-coloring is solvable on EVERY path, yet Theta(n)
  // - the automaton is length-feasible everywhere but has no flexible
  // (gcd-1) state.
  const auto result = classify_on_paths(problems::two_coloring(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kGlobal);
  EXPECT_TRUE(result.solvable_for_all_lengths);
}

TEST(PathClassifier, MisAndMatchingAreLogStar) {
  EXPECT_EQ(classify_on_paths(problems::mis(2)).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_on_paths(problems::maximal_matching(2)).complexity,
            CycleComplexity::kLogStar);
}

TEST(PathClassifier, UnsolvableDetected) {
  // Degree-1 nodes have no allowed configuration: no path is solvable.
  Alphabet in({"-"});
  Alphabet out({"a"});
  NodeEdgeCheckableLcl::Builder b("no-endpoints", in, out, 2);
  b.allow_node({0, 0});
  b.allow_edge(0, 0);
  b.unrestricted_inputs();
  const auto result = classify_on_paths(b.build());
  EXPECT_EQ(result.complexity, CycleComplexity::kUnsolvable);
  EXPECT_FALSE(result.solvable_for_all_lengths);
}

TEST(PathClassifier, RejectsInputfulProblems) {
  EXPECT_THROW(classify_on_paths(problems::forbidden_color(3, 2)),
               std::invalid_argument);
}

class PathLengthTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathLengthTest, AutomatonAgreesWithBruteForce) {
  const std::uint64_t n = GetParam();
  const Graph path = make_path(n);
  const struct {
    const char* name;
    NodeEdgeCheckableLcl problem;
  } cases[] = {
      {"3-coloring", problems::coloring(3, 2)},
      {"2-coloring", problems::two_coloring(2)},
      {"mis", problems::mis(2)},
      {"matching", problems::maximal_matching(2)},
      {"sinkless", problems::sinkless_orientation(2)},
  };
  for (const auto& c : cases) {
    const auto input = uniform_labeling(path, 0);
    EXPECT_EQ(solvable_on_path_length(c.problem, n),
              brute_force_solvable(c.problem, path, input))
        << c.name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PathLengthTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11));

TEST(PathLength, MatchingParity) {
  // Maximal matching on paths: solvable for every n >= 2 (maximality, not
  // perfection); perfect matching (no unmatched label) would be even-only.
  const auto matching = problems::maximal_matching(2);
  for (std::uint64_t n = 2; n <= 12; ++n) {
    EXPECT_TRUE(solvable_on_path_length(matching, n)) << n;
  }

  // Perfect matching: no unmatched label exists, so parity bites.
  const auto perfect = problems::perfect_matching(2);
  for (std::uint64_t n = 2; n <= 12; ++n) {
    EXPECT_EQ(solvable_on_path_length(perfect, n), n % 2 == 0) << n;
  }
  const auto cls = classify_on_paths(perfect);
  EXPECT_EQ(cls.complexity, CycleComplexity::kGlobal);
  EXPECT_FALSE(cls.solvable_for_all_lengths);
}

TEST(PathLength, RejectsTinyN) {
  EXPECT_THROW(solvable_on_path_length(problems::trivial(2), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcl
