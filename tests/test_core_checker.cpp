#include "core/checker.hpp"

#include <gtest/gtest.h>

#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"

namespace lcl {
namespace {

/// Assigns each node a color and writes it on all its half-edges.
HalfEdgeLabeling node_colors_to_half_edges(const Graph& g,
                                           const std::vector<Label>& colors) {
  HalfEdgeLabeling out(g.half_edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (int p = 0; p < g.degree(v); ++p) {
      out[g.half_edge(v, p)] = colors[v];
    }
  }
  return out;
}

TEST(Checker, AcceptsProperColoring) {
  Graph g = make_path(6);
  auto p = problems::coloring(3, 2);
  std::vector<Label> colors;
  for (std::size_t i = 0; i < 6; ++i) {
    colors.push_back(static_cast<Label>(i % 3));
  }
  const auto out = node_colors_to_half_edges(g, colors);
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(Checker, RejectsMonochromaticEdge) {
  Graph g = make_path(4);
  auto p = problems::coloring(3, 2);
  std::vector<Label> colors{0, 1, 1, 0};  // nodes 1 and 2 clash
  const auto out = node_colors_to_half_edges(g, colors);
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.edge_failures(), 1u);
  EXPECT_EQ(result.node_failures(), 0u);
}

TEST(Checker, RejectsInconsistentNodeLabels) {
  Graph g = make_path(3);
  auto p = problems::coloring(3, 2);
  HalfEdgeLabeling out(g.half_edge_count(), 0);
  // Node 1 writes color 0 on one half-edge and color 1 on the other: not a
  // valid node configuration for coloring.
  out[g.half_edge(1, 0)] = 1;
  out[g.half_edge(0, 0)] = 2;
  out[g.half_edge(2, 0)] = 1;
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.node_failures(), 1u);
}

TEST(Checker, GViolationAttributedToNodeAndEdge) {
  Graph g = make_path(2);
  auto p = problems::forbidden_color(3, 2);
  const Label forbid0 = p.input_alphabet().at("forbid0");
  const Label free = p.input_alphabet().at("free");
  HalfEdgeLabeling input(g.half_edge_count(), free);
  input[g.half_edge(0, 0)] = forbid0;
  HalfEdgeLabeling out(g.half_edge_count());
  out[g.half_edge(0, 0)] = 0;  // violates g: color 0 forbidden here
  out[g.half_edge(1, 0)] = 1;
  const auto result = check_solution(p, g, input, out);
  EXPECT_FALSE(result.ok());
  // Definition 2.4 attributes a g violation to both the node and the edge.
  EXPECT_GE(result.node_failures(), 1u);
  EXPECT_GE(result.edge_failures(), 1u);
}

TEST(Checker, IsolatedNodesIgnored) {
  Graph g = Graph::Builder(3).add_edge(0, 1).build();
  auto p = problems::coloring(2, 2);
  HalfEdgeLabeling out(g.half_edge_count());
  out[g.half_edge(0, 0)] = 0;
  out[g.half_edge(1, 0)] = 1;
  const auto input = uniform_labeling(g, 0);
  EXPECT_TRUE(is_correct_solution(p, g, input, out));
}

TEST(Checker, ValidatesArguments) {
  Graph g = make_path(4);
  auto p = problems::coloring(3, 2);
  const auto input = uniform_labeling(g, 0);
  HalfEdgeLabeling out(g.half_edge_count(), 0);

  HalfEdgeLabeling short_out(g.half_edge_count() - 1, 0);
  EXPECT_THROW(check_solution(p, g, input, short_out), std::invalid_argument);

  HalfEdgeLabeling bad_label(g.half_edge_count(), 99);
  EXPECT_THROW(check_solution(p, g, input, bad_label), std::invalid_argument);

  HalfEdgeLabeling bad_input(g.half_edge_count(), 42);
  EXPECT_THROW(check_solution(p, g, bad_input, out), std::invalid_argument);

  Graph star = make_star(5);  // degree 5 > problem max degree 2
  const auto star_in = uniform_labeling(star, 0);
  HalfEdgeLabeling star_out(star.half_edge_count(), 0);
  EXPECT_THROW(check_solution(p, star, star_in, star_out),
               std::invalid_argument);
}

TEST(Checker, SinklessOrientationOnStarLikeTree) {
  // Orient all edges of a path toward increasing ids; interior nodes of a
  // path have degree 2 < Delta = 3, so any orientation is fine.
  Graph g = make_path(5);
  auto p = problems::sinkless_orientation(3);
  const Label kOut = p.output_alphabet().at("O");
  const Label kIn = p.output_alphabet().at("I");
  HalfEdgeLabeling out(g.half_edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.endpoints(e);
    out[g.half_edge_of(u, e)] = kOut;
    out[g.half_edge_of(v, e)] = kIn;
  }
  const auto input = uniform_labeling(g, 0);
  EXPECT_TRUE(is_correct_solution(p, g, input, out));
}

TEST(Checker, SinklessOrientationRejectsSinkAtFullDegree) {
  Graph g = make_star(3);  // center has degree 3 = Delta
  auto p = problems::sinkless_orientation(3);
  const Label kOut = p.output_alphabet().at("O");
  const Label kIn = p.output_alphabet().at("I");
  HalfEdgeLabeling out(g.half_edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    // All edges oriented toward the center: center is a sink.
    const auto [u, v] = g.endpoints(e);
    const NodeId leaf = (u == 0) ? v : u;
    out[g.half_edge_of(leaf, e)] = kOut;
    out[g.half_edge_of(0, e)] = kIn;
  }
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.node_failures(), 1u);
  EXPECT_EQ(result.violations.front().id, 0u);
}

TEST(Checker, MisOnPathAcceptsAlternating) {
  Graph g = make_path(5);
  auto p = problems::mis(2);
  const Label kI = p.output_alphabet().at("I");
  const Label kP = p.output_alphabet().at("P");
  const Label kO = p.output_alphabet().at("O");
  // MIS = {0, 2, 4}; nodes 1 and 3 point at a neighbor in the set.
  HalfEdgeLabeling out(g.half_edge_count());
  auto set_node = [&](NodeId v, std::vector<Label> labels) {
    for (int port = 0; port < g.degree(v); ++port) {
      out[g.half_edge(v, port)] = labels[static_cast<std::size_t>(port)];
    }
  };
  set_node(0, {kI});
  set_node(1, {kP, kO});  // port 0 points to node 0
  set_node(2, {kI, kI});
  set_node(3, {kP, kO});  // port 0 points to node 2
  set_node(4, {kI});
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(Checker, ResultToStringListsViolations) {
  Graph g = make_path(3);
  auto p = problems::coloring(2, 2);
  HalfEdgeLabeling out(g.half_edge_count(), 0);  // everything color 0
  const auto input = uniform_labeling(g, 0);
  const auto result = check_solution(p, g, input, out);
  EXPECT_FALSE(result.ok());
  const std::string s = result.to_string();
  EXPECT_NE(s.find("edge"), std::string::npos);
}

}  // namespace
}  // namespace lcl
