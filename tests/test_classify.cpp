#include "classify/cycle_classifier.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"

namespace lcl {
namespace {

TEST(CycleClassifier, TrivialIsConstant) {
  const auto result = classify_on_cycles(problems::trivial(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kConstant);
  EXPECT_EQ(result.zero_round_collapse_step, 0);
}

TEST(CycleClassifier, OrientationIsConstantViaCollapse) {
  const auto result = classify_on_cycles(problems::any_orientation(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kConstant);
  EXPECT_GE(result.zero_round_collapse_step, 1);
}

TEST(CycleClassifier, ProperColoringIsLogStar) {
  for (int colors : {3, 4, 5}) {
    const auto result = classify_on_cycles(problems::coloring(colors, 2));
    EXPECT_EQ(result.complexity, CycleComplexity::kLogStar) << colors;
  }
}

TEST(CycleClassifier, MisAndMatchingAreLogStar) {
  EXPECT_EQ(classify_on_cycles(problems::mis(2)).complexity,
            CycleComplexity::kLogStar);
  EXPECT_EQ(classify_on_cycles(problems::maximal_matching(2)).complexity,
            CycleComplexity::kLogStar);
}

TEST(CycleClassifier, TwoColoringIsGlobalWithPeriodTwo) {
  const auto result = classify_on_cycles(problems::two_coloring(2));
  EXPECT_EQ(result.complexity, CycleComplexity::kGlobal);
  ASSERT_FALSE(result.scc_gcds.empty());
  for (const auto g : result.scc_gcds) EXPECT_EQ(g, 2u);
}

TEST(CycleClassifier, UnsolvableDetected) {
  // Output b is required by the edge constraint but never allowed around a
  // node, so no cycle admits a solution.
  Alphabet in({"-"});
  Alphabet out({"a", "b"});
  NodeEdgeCheckableLcl::Builder b("dead-end", in, out, 2);
  b.allow_node({0, 0}).allow_node({0});
  b.allow_edge(0, 1);
  b.unrestricted_inputs();
  const auto result = classify_on_cycles(b.build());
  EXPECT_EQ(result.complexity, CycleComplexity::kUnsolvable);
}

TEST(CycleClassifier, RejectsInputfulProblems) {
  EXPECT_THROW(classify_on_cycles(problems::forbidden_color(3, 2)),
               std::invalid_argument);
}

TEST(CycleClassifier, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(CycleComplexity::kUnsolvable), "unsolvable");
  EXPECT_EQ(to_string(CycleComplexity::kGlobal), "Theta(n)");
  EXPECT_EQ(to_string(CycleComplexity::kLogStar), "Theta(log* n)");
  EXPECT_EQ(to_string(CycleComplexity::kConstant), "O(1)");
}

class SolvableLengthTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolvableLengthTest, AutomatonAgreesWithBruteForce) {
  const std::uint64_t n = GetParam();
  const Graph cycle = make_cycle(n);
  const struct {
    const char* name;
    NodeEdgeCheckableLcl problem;
  } cases[] = {
      {"3-coloring", problems::coloring(3, 2)},
      {"2-coloring", problems::two_coloring(2)},
      {"mis", problems::mis(2)},
      {"matching", problems::maximal_matching(2)},
      {"trivial", problems::trivial(2)},
  };
  for (const auto& c : cases) {
    const auto input = uniform_labeling(cycle, 0);
    const bool automaton = solvable_on_cycle_length(c.problem, n);
    const bool brute = brute_force_solvable(c.problem, cycle, input);
    EXPECT_EQ(automaton, brute) << c.name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SolvableLengthTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(SolvableLength, KnownPatterns) {
  // 2-coloring: even cycles only; 3-coloring: all; MIS: all n >= 3.
  const auto two = problems::two_coloring(2);
  const auto three = problems::coloring(3, 2);
  for (std::uint64_t n = 3; n <= 14; ++n) {
    EXPECT_EQ(solvable_on_cycle_length(two, n), n % 2 == 0) << n;
    EXPECT_TRUE(solvable_on_cycle_length(three, n)) << n;
  }
  // Large lengths through the matrix power.
  EXPECT_TRUE(solvable_on_cycle_length(two, 1u << 20));
  EXPECT_FALSE(solvable_on_cycle_length(two, (1u << 20) + 1));
}

}  // namespace
}  // namespace lcl
