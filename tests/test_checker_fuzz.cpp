// Failure-injection property tests: start from a provably correct solution,
// plant a random corruption, and require the checker to notice. This guards
// the checker itself - every other result in the repository is only as
// trustworthy as `check_solution`.

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"

namespace lcl {
namespace {

struct Case {
  const char* name;
  NodeEdgeCheckableLcl problem;
};

std::vector<Case> battery() {
  std::vector<Case> cases;
  cases.push_back({"3-coloring", problems::coloring(3, 3)});
  cases.push_back({"mis", problems::mis(3)});
  cases.push_back({"matching", problems::maximal_matching(3)});
  cases.push_back({"sinkless", problems::sinkless_orientation(3)});
  cases.push_back({"weak-2-coloring", problems::weak_coloring(2, 3)});
  return cases;
}

/// Independent re-implementation of Definition 2.3 used as a differential
/// oracle for the checker (deliberately naive and separate from
/// `check_solution`).
bool naive_valid(const NodeEdgeCheckableLcl& p, const Graph& g,
                 const HalfEdgeLabeling& input,
                 const HalfEdgeLabeling& output) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) == 0) continue;
    std::vector<Label> around;
    for (int port = 0; port < g.degree(v); ++port) {
      const HalfEdgeId h = g.half_edge(v, port);
      around.push_back(output[h]);
      if (!p.allowed_outputs(input[h]).contains(output[h])) return false;
    }
    if (!p.node_allows(Configuration(around))) return false;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!p.edge_allows(output[2 * e], output[2 * e + 1])) return false;
  }
  return true;
}

/// Smallest label change at one half-edge that alters the labeling.
HalfEdgeLabeling corrupt(const HalfEdgeLabeling& solution,
                         std::size_t alphabet, SplitRng& rng) {
  HalfEdgeLabeling bad = solution;
  const std::size_t h = rng.next_below(bad.size());
  const Label old = bad[h];
  Label fresh = static_cast<Label>(rng.next_below(alphabet));
  while (fresh == old) fresh = static_cast<Label>(rng.next_below(alphabet));
  bad[h] = fresh;
  return bad;
}

class CheckerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerFuzzTest, SingleHalfEdgeCorruptionAlwaysAttributed) {
  SplitRng rng(GetParam());
  for (auto& c : battery()) {
    Graph g = make_random_tree(12, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const auto solution = brute_force_solve(c.problem, g, input);
    ASSERT_TRUE(solution.has_value()) << c.name;
    ASSERT_TRUE(is_correct_solution(c.problem, g, input, *solution))
        << c.name;

    for (int trial = 0; trial < 10; ++trial) {
      const auto bad =
          corrupt(*solution, c.problem.output_alphabet().size(), rng);
      const auto check = check_solution(c.problem, g, input, bad);
      // Differential oracle: the checker and the naive validator must agree
      // (a single flip occasionally yields another valid solution, e.g. a
      // recolorable leaf in 3-coloring - that is a pass for both).
      EXPECT_EQ(check.ok(), naive_valid(c.problem, g, input, bad)) << c.name;
      if (check.ok()) continue;
      // Invalid corruption: some violation must be attributed to the
      // corrupted half-edge's node or edge (all other half-edges are
      // untouched, so any constraint involving the change sits there).
      std::size_t changed = 0;
      for (std::size_t h = 0; h < bad.size(); ++h) {
        if (bad[h] != (*solution)[h]) changed = h;
      }
      const NodeId v = g.node_of(static_cast<HalfEdgeId>(changed));
      const EdgeId e = Graph::edge_of(static_cast<HalfEdgeId>(changed));
      bool attributed = false;
      for (const auto& violation : check.violations) {
        if (violation.kind == Violation::Kind::kNode && violation.id == v) {
          attributed = true;
        }
        if (violation.kind == Violation::Kind::kEdge && violation.id == e) {
          attributed = true;
        }
      }
      EXPECT_TRUE(attributed)
          << c.name << ": violation not attributed to the corrupted site";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(CheckerFuzz, InputfulCorruptionCaught) {
  // forbidden_color: flipping an output to the forbidden color must be
  // flagged even if the coloring stays proper.
  SplitRng rng(7);
  const auto problem = problems::forbidden_color(4, 2);
  Graph g = make_path(6);
  // Forbid color c at node i's half-edges via inputs.
  HalfEdgeLabeling input(g.half_edge_count(),
                         problem.input_alphabet().at("free"));
  input[g.half_edge(2, 0)] = problem.input_alphabet().at("forbid1");
  const auto solution = brute_force_solve(problem, g, input);
  ASSERT_TRUE(solution.has_value());

  HalfEdgeLabeling bad = *solution;
  bad[g.half_edge(2, 0)] = 1;  // the forbidden color
  // Make the neighbor consistent so only the g constraint can complain...
  // (it may also break properness; either way the checker must object).
  const auto check = check_solution(problem, g, input, bad);
  EXPECT_FALSE(check.ok());
}

TEST(CheckerFuzz, RandomLabelingsAlmostNeverPass) {
  // Sanity: a uniformly random labeling of a 30-node tree practically never
  // satisfies MIS. (Probabilistic, but the failure probability of this
  // test is astronomically small.)
  SplitRng rng(99);
  const auto problem = problems::mis(3);
  Graph g = make_random_tree(30, 3, rng);
  const auto input = uniform_labeling(g, 0);
  int passes = 0;
  for (int t = 0; t < 50; ++t) {
    const auto random_out =
        random_labeling(g, problem.output_alphabet().size(), rng);
    if (is_correct_solution(problem, g, input, random_out)) ++passes;
  }
  EXPECT_EQ(passes, 0);
}

TEST(BruteForceBudget, TinyBudgetThrowsWithBudgetInMessage) {
  // 3-coloring a 12-node cycle needs far more than 3 backtracking steps.
  const auto problem = problems::coloring(3, 2);
  const Graph g = make_cycle(12);
  const auto input = uniform_labeling(g, 0);
  try {
    brute_force_solve(problem, g, input, /*max_steps=*/3);
    FAIL() << "expected StepBudgetExceeded";
  } catch (const StepBudgetExceeded& e) {
    EXPECT_EQ(e.budget(), 3u);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos)
        << "message must state the budget in force: " << e.what();
  }
  EXPECT_THROW(brute_force_solvable(problem, g, input, 3),
               StepBudgetExceeded);
}

TEST(BruteForceBudget, GenerousBudgetSolvesTheSameInstance) {
  const auto problem = problems::coloring(3, 2);
  const Graph g = make_cycle(12);
  const auto input = uniform_labeling(g, 0);
  const auto solution = brute_force_solve(problem, g, input, 1'000'000);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(is_correct_solution(problem, g, input, *solution));
}

}  // namespace
}  // namespace lcl
