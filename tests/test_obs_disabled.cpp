// Compiled with LCL_OBS=0 (see tests/CMakeLists.txt) while the rest of the
// test binary uses the build's default - proving the two modes coexist in
// one program and that disabled-mode macros are true no-ops. Declarations
// are identical in both modes (only the macros change), so mixing the
// modes across translation units is ODR-safe by construction.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/exporter.hpp"
#include "obs/resource_sampler.hpp"

namespace lcl {
namespace {

static_assert(LCL_OBS == 0, "this TU must build in disabled mode");

/// Runtime switch state is process-global; restore it so enabled-mode
/// tests in the sibling TU are unaffected by ordering.
class RestoreMetricsSwitch {
 public:
  RestoreMetricsSwitch() : previous_(obs::metrics_enabled()) {}
  ~RestoreMetricsSwitch() { obs::set_metrics_enabled(previous_); }

 private:
  bool previous_;
};

TEST(ObsDisabled, EnabledMacroIsConstantFalse) {
  RestoreMetricsSwitch restore;
  // Even with the runtime switch on, the compile-time gate wins.
  obs::set_metrics_enabled(true);
  EXPECT_FALSE(LCL_OBS_ENABLED());
}

TEST(ObsDisabled, MetricsMacrosDoNotTouchTheRegistry) {
  RestoreMetricsSwitch restore;
  obs::set_metrics_enabled(true);

  LCL_OBS_COUNTER_ADD("disabled.counter", 7);
  LCL_OBS_GAUGE_SET("disabled.gauge", 3);
  LCL_OBS_HISTOGRAM_RECORD("disabled.histogram", 11);

  const auto& reg = obs::registry();
  EXPECT_EQ(reg.find_counter("disabled.counter"), nullptr);
  EXPECT_EQ(reg.find_gauge("disabled.gauge"), nullptr);
  EXPECT_EQ(reg.find_histogram("disabled.histogram"), nullptr);
}

TEST(ObsDisabled, SpanMacroIsAnInertNullSpan) {
  LCL_OBS_SPAN(span, "disabled/span", "test");
  LCL_OBS_SPAN_ARG(span, "labels", 42);
  EXPECT_FALSE(span.active());
}

TEST(ObsDisabled, EventMacroWritesNothingToTheCurrentSession) {
  // A discarding session still counts records it formats; the disabled
  // macro must not reach it at all.
  obs::TraceSession session("", obs::TraceFormat::kJsonl);
  obs::TraceSession* previous = obs::TraceSession::set_current(&session);
  const std::uint64_t records_before = session.records_written();
  LCL_OBS_EVENT1("disabled/event", "test", "value", 1);
  obs::TraceSession::set_current(previous);
  EXPECT_EQ(session.records_written(), records_before);
  session.close();
}

// The exporter and sampler are *library* facilities: whether they work is
// decided by the mode lcl_obs was built in (telemetry_compiled_in()), not
// by this TU's LCL_OBS=0. These tests pass in every preset - default
// (library enabled, started) and obs-off (library disabled, fails fast).

TEST(ObsDisabled, ExporterStartMatchesTheLibraryMode) {
  obs::Exporter exporter;
  const bool started = exporter.start();
  EXPECT_EQ(started, obs::telemetry_compiled_in());
  if (started) {
    EXPECT_TRUE(exporter.running());
    EXPECT_NE(exporter.port(), 0);
    EXPECT_EQ(obs::http_get("127.0.0.1", exporter.port(), "/healthz"),
              "ok\n");
    exporter.stop();
  } else {
    EXPECT_FALSE(exporter.running());
    EXPECT_NE(exporter.error().find("LCL_OBS=0"), std::string::npos)
        << exporter.error();
  }
}

TEST(ObsDisabled, ResourceSamplerStartMatchesTheLibraryMode) {
  obs::ResourceSampler sampler;
  const bool started = sampler.start();
  EXPECT_EQ(started, obs::telemetry_compiled_in());
  if (started) {
    EXPECT_TRUE(sampler.running());
    sampler.stop();
    EXPECT_FALSE(sampler.running());
  } else {
    EXPECT_NE(sampler.error().find("LCL_OBS=0"), std::string::npos)
        << sampler.error();
  }
}

}  // namespace
}  // namespace lcl
