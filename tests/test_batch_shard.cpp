// The sharded survey layer: deterministic shard planning, the
// lclscape.shards.v1 manifest, the merge/dedup step's byte-identity and
// conflict policy, and the lcl_batch --shard / lcl_survey_merge /
// survey_diff CLI loop (including kill -9 + --resume of one shard).

#include "batch/shard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "batch/survey.hpp"
#include "lint/canonical.hpp"
#include "lint/spec.hpp"
#include "obs/json.hpp"

namespace lcl {
namespace {

namespace json = obs::json;
using batch::Family;
using batch::MergeConflictError;
using batch::ShardManifest;
using batch::ShardPlan;
using batch::ShardRef;
using batch::SurveyOptions;

SurveyOptions default_options() {
  SurveyOptions options;
  options.engine.max_steps = 3;
  return options;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

json::Value parse_or_die(const std::string& text) {
  std::string error;
  const auto doc = json::parse(text, &error);
  EXPECT_NE(doc, nullptr) << error;
  return *doc;
}

/// A shard report document exactly as `lcl_batch --shard` writes it: the
/// survey rendering plus the manifest under "shard".
json::Value shard_document(const ShardPlan& plan,
                           const SurveyOptions& options) {
  json::Value doc = batch::run_survey(plan.members, options).to_json_value();
  doc.object()["shard"] = plan.manifest.to_json_value();
  return doc;
}

std::vector<json::Value> shard_documents(const Family& family,
                                         std::size_t count,
                                         const SurveyOptions& options) {
  std::vector<json::Value> docs;
  for (std::size_t i = 0; i < count; ++i) {
    docs.push_back(shard_document(
        batch::plan_shard(family, ShardRef{i, count}, "", "test-sha"),
        options));
  }
  return docs;
}

TEST(ShardIndex, IsTotalDeterministicAndInRange) {
  for (const std::size_t count : {1u, 2u, 4u, 7u, 64u}) {
    for (const std::uint64_t key : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
      const std::size_t index = batch::shard_index(key, count);
      EXPECT_LT(index, count);
      EXPECT_EQ(index, batch::shard_index(key, count));  // pure
    }
  }
  EXPECT_THROW(batch::shard_index(42, 0), std::invalid_argument);
}

TEST(ShardPlan, PartitionsTheFamilyExactlyOnce) {
  const auto family = batch::exhaustive_family({});
  for (const std::size_t count : {1u, 2u, 4u, 7u}) {
    std::set<std::string> covered;
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto plan = batch::plan_shard(family, ShardRef{i, count},
                                          "tier-" + std::to_string(i),
                                          "sha-test");
      EXPECT_EQ(plan.manifest.shard_index, i);
      EXPECT_EQ(plan.manifest.shard_count, count);
      EXPECT_EQ(plan.manifest.members_total, family.members.size());
      EXPECT_EQ(plan.manifest.family, family.description);
      EXPECT_EQ(plan.members.description, family.description);
      ASSERT_EQ(plan.members.members.size(), plan.manifest.members.size());
      for (std::size_t m = 0; m < plan.members.members.size(); ++m) {
        EXPECT_EQ(plan.members.members[m].name, plan.manifest.members[m]);
        EXPECT_TRUE(covered.insert(plan.manifest.members[m]).second)
            << plan.manifest.members[m] << " assigned to two shards";
      }
      total += plan.members.members.size();
    }
    EXPECT_EQ(total, family.members.size()) << count << " shards";
  }
  EXPECT_THROW(batch::plan_shard(family, ShardRef{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(batch::plan_shard(family, ShardRef{4, 4}),
               std::invalid_argument);
}

TEST(ShardPlan, PermutationEquivalentMembersShareAShard) {
  // Shard keys go through the canonical form, so a relabeled copy of a
  // problem can never land on a different shard (which would defeat the
  // per-shard canonical cache tier).
  const auto family = batch::exhaustive_family({});
  std::size_t permuted_pairs = 0;
  for (const auto& member : family.members) {
    const auto spec = lint::spec_from_problem(member.problem);
    const auto form = lint::canonical_form(spec);
    if (!form.complete) continue;
    std::vector<Label> swap(spec.outputs.size());
    for (std::size_t l = 0; l < swap.size(); ++l) {
      swap[l] = static_cast<Label>(swap.size() - 1 - l);
    }
    const auto permuted = lint::build_spec(lint::permute_spec(spec, swap));
    EXPECT_EQ(batch::shard_key(member.problem), batch::shard_key(permuted))
        << member.name;
    ++permuted_pairs;
  }
  EXPECT_GT(permuted_pairs, 0u);
}

TEST(ShardManifestJson, RoundTripsAndValidates) {
  ShardManifest manifest;
  manifest.family = "exhaustive:d2:l2";
  manifest.shard_index = 2;
  manifest.shard_count = 4;
  manifest.members_total = 49;
  manifest.members = {"d2l2-n1-e1", "d2l2-n7-e7"};
  manifest.cache_tier = "/tmp/cache-shard-2-of-4.jsonl";
  manifest.git_sha = "abc123";

  const auto value = manifest.to_json_value();
  EXPECT_EQ(value.find("schema")->as_string(), "lclscape.shards.v1");
  const auto back = ShardManifest::from_json_value(value);
  EXPECT_EQ(back.family, manifest.family);
  EXPECT_EQ(back.shard_index, manifest.shard_index);
  EXPECT_EQ(back.shard_count, manifest.shard_count);
  EXPECT_EQ(back.members_total, manifest.members_total);
  EXPECT_EQ(back.members, manifest.members);
  EXPECT_EQ(back.cache_tier, manifest.cache_tier);
  EXPECT_EQ(back.git_sha, manifest.git_sha);

  json::Value wrong = manifest.to_json_value();
  wrong.object()["schema"] = json::Value(std::string("lclscape.shards.v9"));
  EXPECT_THROW(ShardManifest::from_json_value(wrong), std::runtime_error);
  json::Value missing = manifest.to_json_value();
  missing.object().erase("members");
  EXPECT_THROW(ShardManifest::from_json_value(missing), std::runtime_error);
}

TEST(OutcomeJson, RowRoundTripIsLossless) {
  const auto family = batch::exhaustive_family({});
  const auto report = batch::run_survey(family, default_options());
  ASSERT_FALSE(report.outcomes.empty());
  for (const auto& outcome : report.outcomes) {
    const auto row = batch::outcome_to_json_value(outcome);
    const auto back = batch::outcome_from_json_value(row);
    // Lossless = the re-rendered row is byte-identical.
    EXPECT_EQ(json::dump(batch::outcome_to_json_value(back)),
              json::dump(row))
        << outcome.name;
  }
  EXPECT_THROW(batch::outcome_from_json_value(json::Value(std::string("x"))),
               std::runtime_error);
  json::Value partial = json::Value::make_object();
  partial.object()["name"] = json::Value(std::string("p"));
  EXPECT_THROW(batch::outcome_from_json_value(partial), std::runtime_error);
}

TEST(Merge, ReassemblesTheSinglePoolReportByteForByte) {
  const auto family = batch::exhaustive_family({});
  const auto options = default_options();
  const std::string single = batch::run_survey(family, options).to_json();

  for (const std::size_t count : {1u, 2u, 4u, 7u}) {
    const auto result =
        batch::merge_shard_reports(shard_documents(family, count, options));
    EXPECT_EQ(result.report.to_json(), single) << count << " shards";
    EXPECT_EQ(result.manifests.size(), count);
    EXPECT_EQ(result.duplicates, 0u);
  }

  // The shard processes' own thread counts must not leak into the merge.
  auto threaded = options;
  threaded.jobs = 3;
  const auto result =
      batch::merge_shard_reports(shard_documents(family, 4, threaded));
  EXPECT_EQ(result.report.to_json(), single);
}

TEST(Merge, DeduplicatesIdenticalRowsAndRefusesConflicts) {
  const auto family = batch::exhaustive_family({});
  const auto options = default_options();
  auto docs = shard_documents(family, 2, options);

  // Copy one row of shard 1 into shard 0 verbatim (and teach shard 0's
  // manifest about it): a benign cross-shard duplicate.
  json::Value row = docs[1].find("problems")->as_array().front();
  const std::string name = row.find("name")->as_string();
  const std::string key = row.find("key")->as_string();
  auto with_row = [&](json::Value doc, json::Value extra) {
    doc.object()["problems"].array().push_back(std::move(extra));
    doc.object()["shard"].object()["members"].array().push_back(
        json::Value(name));
    return doc;
  };
  const auto merged = batch::merge_shard_reports(
      {with_row(docs[0], row), docs[1]});
  EXPECT_EQ(merged.duplicates, 1u);
  EXPECT_EQ(merged.report.to_json(),
            batch::run_survey(family, options).to_json());

  // The same row with a flipped verdict is a class conflict: refused, and
  // the message names the row key and both classes.
  json::Value flipped = row;
  const std::string original_class = flipped.find("class")->as_string();
  flipped.object()["class"] = json::Value(std::string("Theta(log n)"));
  try {
    batch::merge_shard_reports({with_row(docs[0], flipped), docs[1]});
    FAIL() << "conflicting shard row did not refuse the merge";
  } catch (const MergeConflictError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(key), std::string::npos) << message;
    EXPECT_NE(message.find("Theta(log n)"), std::string::npos) << message;
    EXPECT_NE(message.find(original_class), std::string::npos) << message;
  }
}

TEST(Merge, RefusesIncompleteOrInconsistentShardSets) {
  const auto family = batch::exhaustive_family({});
  const auto options = default_options();
  const auto docs = shard_documents(family, 2, options);

  // Missing shard.
  EXPECT_THROW(batch::merge_shard_reports({docs[0]}), MergeConflictError);
  // Duplicate shard index.
  EXPECT_THROW(batch::merge_shard_reports({docs[0], docs[0]}),
               MergeConflictError);
  // Verdict-relevant option echo mismatch.
  auto tampered = docs;
  tampered[1].object()["survey"].object()["engine_max_steps"] =
      json::Value(static_cast<std::int64_t>(99));
  EXPECT_THROW(batch::merge_shard_reports(tampered), MergeConflictError);
  // A shard report that lost a row its manifest still claims.
  auto truncated = docs;
  truncated[0].object()["problems"].array().pop_back();
  EXPECT_THROW(batch::merge_shard_reports(truncated), MergeConflictError);
  // Not a survey document at all -> parse error, not a conflict.
  EXPECT_THROW(batch::merge_shard_reports({json::Value(std::string("x"))}),
               std::runtime_error);
  EXPECT_THROW(batch::merge_shard_reports({}), std::runtime_error);
}

#ifdef LCL_BATCH_GOLDEN_DIR
TEST(Merge, Delta3GoldenSliceMatchesTheShardedPath) {
  // The first committed Delta=3 slice: classifiers off (every degree-2
  // member of the interior-constrained d3 family is trivially 0-round on
  // cycles/paths, so the landscape content is the engine verdicts), merged
  // from shards exactly like the nightly atlas leg produces it.
  const std::string golden_path =
      std::string(LCL_BATCH_GOLDEN_DIR) + "/survey-d3-l2.json";
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path;

  batch::ExhaustiveFamilyOptions exhaustive;
  exhaustive.max_degree = 3;
  const auto family = batch::exhaustive_family(exhaustive);
  auto options = default_options();
  options.classify_cycles = false;
  options.classify_paths = false;
  options.jobs = 4;
  const auto result =
      batch::merge_shard_reports(shard_documents(family, 4, options));
  EXPECT_EQ(result.report.to_json() + "\n", golden)
      << "the Delta=3 landscape drifted; if intentional, regenerate with\n"
         "  lcl_batch --delta=3 --labels=2 --classify=off "
         "--report-telemetry=off --shard=i/4 ... and lcl_survey_merge\n"
         "(see EXPERIMENTS.md, ATLAS recipe)";
}
#endif

// ---------------------------------------------------------------------------
// The CLI loop: lcl_batch --shard -> lcl_survey_merge -> survey_diff.

class ShardCliTest : public ::testing::Test {
 protected:
  /// Per-test scratch directory: ctest runs the CLI tests as parallel
  /// processes, so they must not share (or wipe) one directory.
  std::string dir() const {
    return ::testing::TempDir() + "lcl_shard_cli_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }

  void SetUp() override {
    std::filesystem::remove_all(dir());
    std::filesystem::create_directories(dir());
  }

  static int run(const std::string& command) {
    const int status = std::system((command + " >/dev/null 2>&1").c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
  }

  static std::string batch_cli() { return LCL_BATCH_CLI_PATH; }
  static std::string merge_cli() { return LCL_SURVEY_MERGE_PATH; }
  static std::string diff_cli() { return LCL_SURVEY_DIFF_PATH; }

  /// `lcl_batch` args common to every run here: the default d2 l2 family
  /// with byte-reproducible reports.
  static std::string base_args() {
    return " --delta=2 --labels=2 --report-telemetry=off --quiet";
  }
};

TEST_F(ShardCliTest, FourShardMergeIsByteIdenticalAndDiffClean) {
  const std::string single = dir() + "/single.json";
  ASSERT_EQ(run(batch_cli() + base_args() + " --jobs=2 --report-json=" +
                single),
            0);
  std::string shard_list;
  for (int i = 0; i < 4; ++i) {
    const std::string report =
        dir() + "/shard-" + std::to_string(i) + ".json";
    ASSERT_EQ(run(batch_cli() + base_args() + " --shard=" +
                  std::to_string(i) + "/4 --manifest=" + dir() + "/manifest-" +
                  std::to_string(i) + ".json --report-json=" + report),
              0);
    shard_list += " " + report;
  }
  const std::string merged = dir() + "/merged.json";
  ASSERT_EQ(run(merge_cli() + " --out=" + merged + " --manifest-out=" +
                dir() + "/merged-manifest.json" + shard_list),
            0);
  EXPECT_EQ(read_file(merged), read_file(single));

  // The standalone manifest file round-trips through the library parser.
  const auto manifest = ShardManifest::from_json_value(
      parse_or_die(read_file(dir() + "/manifest-2.json")));
  EXPECT_EQ(manifest.shard_index, 2u);
  EXPECT_EQ(manifest.shard_count, 4u);
  EXPECT_EQ(manifest.members_total, 49u);

  EXPECT_EQ(run(diff_cli() + " --baseline=" + single + " --current=" +
                merged),
            0);
  EXPECT_EQ(run(diff_cli() + " --strict --baseline=" + single +
                " --current=" + merged),
            0);
  // A dropped shard refuses with exit 1 (conflict), not 2 (usage).
  EXPECT_EQ(run(merge_cli() + " --out=/dev/null " + dir() +
                "/shard-0.json " + dir() + "/shard-1.json"),
            1);
}

TEST_F(ShardCliTest, SurveyDiffGatesVerdictFlipsButAllowsGrowth) {
  const std::string single = dir() + "/diff-base.json";
  ASSERT_EQ(run(batch_cli() + base_args() + " --report-json=" + single), 0);

  // Flip the first "unsolvable" verdict: exit 1 with or without growth.
  std::string flipped = read_file(single);
  const auto at = flipped.find("\"class\":\"unsolvable\"");
  ASSERT_NE(at, std::string::npos);
  flipped.replace(at, std::string("\"class\":\"unsolvable\"").size(),
                  "\"class\":\"O(1)\"");
  write_file(dir() + "/diff-flipped.json", flipped);
  EXPECT_EQ(run(diff_cli() + " --baseline=" + single + " --current=" +
                dir() + "/diff-flipped.json"),
            1);
  EXPECT_EQ(run(diff_cli() + " --baseline=" + single + " --current=" +
                dir() + "/diff-flipped.json --allow-growth"),
            1);
  EXPECT_EQ(run(diff_cli() + " --strict --baseline=" + single +
                " --current=" + dir() + "/diff-flipped.json"),
            1);

  // A capped run is the "smaller atlas": growing back to the full family
  // fails plain but passes --allow-growth.
  const std::string capped = dir() + "/diff-capped.json";
  ASSERT_EQ(run(batch_cli() + base_args() + " --max-problems=30" +
                " --report-json=" + capped),
            0);
  EXPECT_EQ(run(diff_cli() + " --baseline=" + capped + " --current=" +
                single),
            1);
  EXPECT_EQ(run(diff_cli() + " --baseline=" + capped + " --current=" +
                single + " --allow-growth"),
            0);
  // Shrinking is never growth.
  EXPECT_EQ(run(diff_cli() + " --baseline=" + single + " --current=" +
                capped + " --allow-growth"),
            1);
  // Missing file -> usage/parse exit.
  EXPECT_EQ(run(diff_cli() + " --baseline=" + single +
                " --current=" + dir() + "/nope.json"),
            2);
}

TEST_F(ShardCliTest, ShardSurvivesKillDashNineAndResumes) {
  const std::string cache = dir() + "/kill-cache";
  const std::string single = dir() + "/kill-single.json";
  ASSERT_EQ(run(batch_cli() + base_args() + " --report-json=" + single), 0);

  std::string shard_list;
  for (int i = 0; i < 4; ++i) {
    const std::string report =
        dir() + "/kill-shard-" + std::to_string(i) + ".json";
    const std::string shard_args = base_args() + " --shard=" +
                                   std::to_string(i) + "/4 --cache-dir=" +
                                   cache + " --report-json=" + report;
    if (i == 2) {
      // SIGKILL shard 2 almost immediately; whether it got anything onto
      // disk (including a torn trailing line) must not matter.
      run("timeout -s KILL 0.05s " + batch_cli() + shard_args);
      ASSERT_EQ(run(batch_cli() + shard_args + " --resume"), 0);
    } else {
      ASSERT_EQ(run(batch_cli() + shard_args), 0);
    }
    shard_list += " " + report;
  }
  const std::string merged = dir() + "/kill-merged.json";
  ASSERT_EQ(run(merge_cli() + " --out=" + merged + shard_list), 0);
  EXPECT_EQ(read_file(merged), read_file(single));
}

TEST_F(ShardCliTest, ResumeReportsForeignEngineTiers) {
  const std::string cache = dir() + "/sha-cache";
  std::filesystem::create_directories(cache);
  // A tier left behind by a different engine build: provenance meta line
  // with a foreign SHA.
  write_file(cache + "/cache-shard-0-of-2.jsonl",
             "{\"git_sha\":\"feedface\",\"meta\":\"lclscape.cachetier.v1\"}"
             "\n");
  const std::string args = base_args() + " --shard=0/2 --cache-dir=" +
                           cache + " --report-json=/dev/null";
  // Default: warn and proceed.
  EXPECT_EQ(run(batch_cli() + args + " --resume"), 0);
  // Strict: refuse. (The tier still carries the foreign meta line - resume
  // never rewrites it.)
  EXPECT_EQ(run(batch_cli() + args + " --resume=strict"), 2);
  // A fresh (non-resume) run truncates the tier and stamps the current
  // SHA, after which strict resume is clean.
  EXPECT_EQ(run(batch_cli() + args), 0);
  EXPECT_EQ(run(batch_cli() + args + " --resume=strict"), 0);
}

}  // namespace
}  // namespace lcl
