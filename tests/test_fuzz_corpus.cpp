// The fuzzing subsystem's own tests:
//  - every checked-in corpus counterexample must replay cleanly (these
//    files are regression fences: each one once exposed a real or injected
//    bug, and the replay asserts the disagreement stays fixed);
//  - the harness must catch a deliberately injected bug end-to-end: detect
//    it, shrink the failing case, save it, and reproduce it from the file;
//  - saved cases must round-trip through JSON bit-for-bit;
//  - the generator must be deterministic in its seed.

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "core/lcl.hpp"
#include "fuzz/case_io.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"

#ifndef LCL_FUZZ_CORPUS_DIR
#error "build must define LCL_FUZZ_CORPUS_DIR"
#endif

namespace lcl::fuzz {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(LCL_FUZZ_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasCheckedInCases) {
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(FuzzCorpus, EveryCaseReplaysCleanly) {
  const OracleOptions options;
  for (const auto& file : corpus_files()) {
    const auto fuzz_case = load_case(file);
    const auto result = replay_case(fuzz_case, options);
    EXPECT_TRUE(result.applicable) << file << ": case no longer applicable";
    EXPECT_FALSE(result.failed)
        << file << ": regression - " << result.message;
  }
}

TEST(FuzzCorpus, InjectedBugCaughtShrunkSavedAndReproduced) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "lcl_fuzz_injected";
  fs::remove_all(dir);

  FuzzRunOptions options;
  options.seeds = 40;
  options.only_oracle = "lift-soundness";
  options.oracle.inject = "drop-rbar-config";
  options.corpus_dir = dir.string();

  const auto report = run_fuzz(options);
  ASSERT_GT(report.failures, 0u)
      << "the oracle bank failed to catch the injected bug";
  ASSERT_EQ(report.corpus_files.size(), report.failures);
  ASSERT_EQ(report.failure_messages.size(), report.failures);

  // The saved counterexample reproduces the bug from disk...
  const auto saved = load_case(report.corpus_files.front());
  const auto with_bug = replay_case(saved, options.oracle);
  EXPECT_TRUE(with_bug.applicable && with_bug.failed)
      << "saved case does not reproduce under the injection";

  // ...and passes once the bug is gone (clean oracle options).
  const auto clean = replay_case(saved, OracleOptions{});
  EXPECT_TRUE(clean.passed())
      << "saved case fails without the injected bug: " << clean.message;

  fs::remove_all(dir);
}

TEST(FuzzShrink, ShrinksInjectedFailureWhilePreservingIt) {
  OracleOptions with_bug;
  with_bug.inject = "drop-rbar-config";

  // Find one failing case deterministically.
  FuzzCase failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    FuzzCase c = random_case(GeneratorOptions{}, seed);
    c.oracle = "lift-soundness";
    const auto result = run_oracle(c.oracle, c, with_bug);
    if (result.applicable && result.failed) {
      failing = c;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  ShrinkStats stats;
  const auto minimal = shrink_case(failing, with_bug, &stats);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_LE(minimal.graph.node_count(), failing.graph.node_count());
  EXPECT_LE(minimal.problem.output_alphabet().size(),
            failing.problem.output_alphabet().size());

  const auto still = run_oracle(minimal.oracle, minimal, with_bug);
  EXPECT_TRUE(still.applicable && still.failed)
      << "shrinking lost the failure";
}

TEST(FuzzCaseIo, JsonRoundTripIsExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzCase original = random_case(GeneratorOptions{}, seed);
    original.oracle = "cross-model";
    original.note = "round-trip seed " + std::to_string(seed);

    const auto restored = from_json(to_json(original));
    EXPECT_EQ(restored.oracle, original.oracle);
    EXPECT_EQ(restored.seed, original.seed);
    EXPECT_EQ(restored.note, original.note);
    EXPECT_EQ(restored.family, original.family);
    EXPECT_TRUE(same_constraints(restored.problem, original.problem));
    ASSERT_EQ(restored.graph.node_count(), original.graph.node_count());
    ASSERT_EQ(restored.graph.edge_count(), original.graph.edge_count());
    for (EdgeId e = 0; e < original.graph.edge_count(); ++e) {
      EXPECT_EQ(restored.graph.endpoints(e), original.graph.endpoints(e));
    }
    EXPECT_EQ(restored.input, original.input);
    // Serializing again is byte-identical (stable field and key order).
    EXPECT_EQ(to_json(restored), to_json(original));
  }
}

TEST(FuzzCaseIo, RejectsMalformedCases) {
  EXPECT_THROW(from_json("not json at all"), std::runtime_error);
  EXPECT_THROW(from_json("{}"), std::runtime_error);
  EXPECT_THROW(from_json(R"({"version": 99})"), std::runtime_error);
  // A structurally valid file whose input labeling is too short.
  FuzzCase c = random_case(GeneratorOptions{}, 1);
  c.oracle = "cross-model";
  auto text = to_json(c);
  const auto pos = text.find("\"input\":[");
  ASSERT_NE(pos, std::string::npos);
  const auto end = text.find(']', pos);
  text.replace(pos, end - pos + 1, "\"input\":[]");
  if (c.graph.half_edge_count() > 0) {
    EXPECT_THROW(from_json(text), std::runtime_error);
  }
}

TEST(FuzzGenerator, DeterministicInSeed) {
  const GeneratorOptions options;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase a = random_case(options, seed);
    const FuzzCase b = random_case(options, seed);
    EXPECT_EQ(to_json(a), to_json(b)) << "seed " << seed;
  }
}

TEST(FuzzGenerator, ProducesValidBuildableCases) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzCase c = random_case(GeneratorOptions{}, seed);
    EXPECT_GE(c.problem.output_alphabet().size(), 2u);
    EXPECT_LE(c.graph.max_degree(), c.problem.max_degree());
    EXPECT_EQ(c.input.size(), c.graph.half_edge_count());
    for (const auto l : c.input) {
      EXPECT_LT(l, c.problem.input_alphabet().size());
    }
    EXPECT_FALSE(c.family.empty());
  }
}

TEST(FuzzRun, CleanBankHasNoFailuresAndTalliesAdd) {
  FuzzRunOptions options;
  options.seeds = 30;
  const auto report = run_fuzz(options);
  EXPECT_EQ(report.seeds_run, 30u);
  EXPECT_EQ(report.failures, 0u)
      << (report.failure_messages.empty() ? std::string()
                                          : report.failure_messages.front());
  EXPECT_GT(report.checks, 0u);
  std::uint64_t checks = 0, skipped = 0;
  for (const auto& [id, tally] : report.per_oracle) {
    checks += tally.checks;
    skipped += tally.skipped;
  }
  EXPECT_EQ(checks, report.checks);
  EXPECT_EQ(skipped, report.skipped);
}

TEST(FuzzRun, UnknownOracleThrows) {
  FuzzCase c = random_case(GeneratorOptions{}, 1);
  c.oracle = "no-such-oracle";
  EXPECT_THROW(run_oracle(c.oracle, c, OracleOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcl::fuzz
