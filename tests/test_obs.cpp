#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "obs/json.hpp"
#include "obs/trace_reader.hpp"
#include "re/engine.hpp"
#include "volume/model.hpp"

namespace lcl {
namespace {

/// Turns runtime metrics on for one test and restores the previous state,
/// so tests do not leak the switch into each other (the registry and the
/// switch are process-wide).
class MetricsOn {
 public:
  MetricsOn() : previous_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(true);
  }
  ~MetricsOn() { obs::set_metrics_enabled(previous_); }

 private:
  bool previous_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Histogram, BucketBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 1u);
  EXPECT_EQ(H::bucket_index(2), 2u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 3u);
  EXPECT_EQ(H::bucket_index(7), 3u);
  EXPECT_EQ(H::bucket_index(8), 4u);
  EXPECT_EQ(H::bucket_index(UINT64_MAX), H::kBucketCount - 1);

  EXPECT_EQ(H::bucket_floor(0), 0u);
  EXPECT_EQ(H::bucket_ceil(0), 0u);
  // Every bucket's floor and ceil map back to that bucket, and buckets
  // tile the value range without gaps: ceil(i) + 1 == floor(i + 1).
  for (std::size_t i = 1; i < H::kBucketCount; ++i) {
    EXPECT_EQ(H::bucket_index(H::bucket_floor(i)), i) << "bucket " << i;
    EXPECT_EQ(H::bucket_index(H::bucket_ceil(i)), i) << "bucket " << i;
    EXPECT_EQ(H::bucket_floor(i), std::uint64_t{1} << (i - 1));
    if (i + 1 < H::kBucketCount) {
      EXPECT_EQ(H::bucket_ceil(i) + 1, H::bucket_floor(i + 1));
    }
  }
  EXPECT_EQ(H::bucket_ceil(H::kBucketCount - 1), UINT64_MAX);
}

TEST(Histogram, RecordAndStats) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0
  EXPECT_EQ(h.max(), 0u);

  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 4.0);
  EXPECT_EQ(h.bucket_count(0), 1u);                            // value 0
  EXPECT_EQ(h.bucket_count(1), 1u);                            // value 1
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_index(5)), 1u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_index(1000)), 1u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(Metrics, CounterAndGauge) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  EXPECT_FALSE(g.ever_set());
  g.set(5);
  g.set(-3);
  g.set(2);
  EXPECT_TRUE(g.ever_set());
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.min(), -3);
  EXPECT_EQ(g.max(), 5);
  g.reset();
  EXPECT_FALSE(g.ever_set());
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistry, CreateFindAndReset) {
  auto& reg = obs::registry();
  const char* name = "test.registry.create_find";
  EXPECT_EQ(reg.find_counter(name), nullptr);

  obs::Counter& c = reg.counter(name);
  c.add(3);
  // Same name resolves to the same instrument - the macro caching relies
  // on references staying stable.
  EXPECT_EQ(&reg.counter(name), &c);
  ASSERT_NE(reg.find_counter(name), nullptr);
  EXPECT_EQ(reg.find_counter(name)->value(), 3u);

  const std::size_t count_before = reg.instrument_count();
  reg.reset();
  // Reset zeroes values but keeps registrations (and references) alive.
  EXPECT_EQ(reg.instrument_count(), count_before);
  EXPECT_EQ(reg.find_counter(name), &c);
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, ToJsonParses) {
  auto& reg = obs::registry();
  reg.counter("test.json.counter").add(7);
  reg.gauge("test.json.gauge").set(-2);
  reg.histogram("test.json.histogram").record(9);

  std::string error;
  const auto value = obs::json::parse(reg.to_json(), &error);
  ASSERT_NE(value, nullptr) << error;
  ASSERT_TRUE(value->is_object());

  const auto* counters = value->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* c = counters->find("test.json.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_int(), 7);

  const auto* gauges = value->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const auto* g = gauges->find("test.json.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("value")->as_int(), -2);

  const auto* histograms = value->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const auto* h = histograms->find("test.json.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_int(), 1);
  EXPECT_EQ(h->find("sum")->as_int(), 9);
}

#if LCL_OBS
TEST(ObsMacros, RespectRuntimeSwitch) {
  auto& reg = obs::registry();
  // Off: the macro body short-circuits before touching the registry.
  obs::set_metrics_enabled(false);
  LCL_OBS_COUNTER_ADD("test.macro.gated", 1);
  EXPECT_EQ(reg.find_counter("test.macro.gated"), nullptr);
  EXPECT_FALSE(LCL_OBS_ENABLED());

  {
    MetricsOn on;
    EXPECT_TRUE(LCL_OBS_ENABLED());
    LCL_OBS_COUNTER_ADD("test.macro.counter", 2);
    LCL_OBS_COUNTER_ADD("test.macro.counter", 3);
    LCL_OBS_GAUGE_SET("test.macro.gauge", 17);
    LCL_OBS_HISTOGRAM_RECORD("test.macro.histogram", 6);
  }
  ASSERT_NE(reg.find_counter("test.macro.counter"), nullptr);
  EXPECT_EQ(reg.find_counter("test.macro.counter")->value(), 5u);
  ASSERT_NE(reg.find_gauge("test.macro.gauge"), nullptr);
  EXPECT_EQ(reg.find_gauge("test.macro.gauge")->value(), 17);
  ASSERT_NE(reg.find_histogram("test.macro.histogram"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.macro.histogram")->count(), 1u);
}
#endif  // LCL_OBS

TEST(Trace, JsonlRoundTrip) {
  const std::string path = testing::TempDir() + "lcl_obs_roundtrip.jsonl";
  {
    obs::TraceSession session(path, obs::TraceFormat::kJsonl);
    const obs::TraceArg arg{"labels", 12};
    session.emit_span("outer", "test", 0, 100, nullptr, 0);
    session.emit_span("inner", "test", 10, 20, &arg, 1);
    session.emit_instant("tick", "test", &arg, 1);
    session.close();
  }

  obs::ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(obs::parse_trace(read_file(path), &trace, &error)) << error;
  EXPECT_TRUE(trace.has_metrics_footer);

  std::size_t spans = 0, events = 0;
  for (const auto& r : trace.records) {
    if (r.kind == obs::TraceRecord::Kind::kSpan) ++spans;
    if (r.kind == obs::TraceRecord::Kind::kEvent) {
      ++events;
      EXPECT_EQ(r.name, "tick");
      ASSERT_TRUE(r.args.count("labels"));
      EXPECT_EQ(r.args.at("labels"), 12);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(events, 1u);

  const auto summary = obs::summarize(trace);
  EXPECT_EQ(summary.wall_us, 100);
  // "inner" [10,30) nests inside "outer" [0,100): only the outer span is
  // top-level and its self-time excludes the nested 20us.
  EXPECT_EQ(summary.top_level_us, 100);
  ASSERT_EQ(summary.phases.size(), 2u);
  EXPECT_EQ(summary.phases[0].name, "outer");
  EXPECT_EQ(summary.phases[0].self_us, 80);
  EXPECT_EQ(summary.phases[1].name, "inner");
  EXPECT_EQ(summary.phases[1].args_total.at("labels"), 12);

  const std::string table = obs::format_summary(summary);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);
}

TEST(Trace, ChromeJsonRoundTrip) {
  const std::string path = testing::TempDir() + "lcl_obs_roundtrip.json";
  {
    obs::TraceSession session(path, obs::TraceFormat::kChromeJson);
    const obs::TraceArg arg{"probes", 4};
    session.emit_span("volume/run", "volume", 5, 50, &arg, 1);
    session.close();
  }

  const std::string text = read_file(path);
  // Well-formed as plain JSON too, not just for our reader.
  std::string error;
  ASSERT_NE(obs::json::parse(text, &error), nullptr) << error;

  obs::ParsedTrace trace;
  ASSERT_TRUE(obs::parse_trace(text, &trace, &error)) << error;
  EXPECT_TRUE(trace.has_metrics_footer);
  bool found = false;
  for (const auto& r : trace.records) {
    if (r.kind == obs::TraceRecord::Kind::kSpan && r.name == "volume/run") {
      found = true;
      EXPECT_EQ(r.ts_us, 5);
      EXPECT_EQ(r.dur_us, 50);
      EXPECT_EQ(r.args.at("probes"), 4);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, RejectsMalformedInput) {
  obs::ParsedTrace trace;
  std::string error;
  EXPECT_FALSE(obs::parse_trace("{\"t\":\"span\"}\n", &trace, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_trace("not json\n", &trace, &error));
  EXPECT_FALSE(obs::parse_trace(
      "{\"t\":\"span\",\"name\":\"x\",\"cat\":\"y\",\"ts\":0,\"dur\":-1}\n",
      &trace, &error));
}

/// Regression test for the budget-exhaustion flow: the throw must leave
/// both the query handle and the global registry in a consistent state -
/// `volume.probes` counts exactly the successful probes, the exhaustion
/// instruments record the failure, and `probes_used()` equals the budget.
TEST(VolumeObs, BudgetExhaustionKeepsRegistryConsistent) {
  MetricsOn on;
  auto& reg = obs::registry();
  const std::uint64_t probes_before =
      reg.counter("volume.probes").value();
  const std::uint64_t exhausted_before =
      reg.counter("volume.budget_exhausted").value();
  const std::uint64_t exhaustion_records_before =
      reg.histogram("volume.probes_at_exhaustion").count();

  Graph g = make_path(6);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  VolumeQuery q(g, 0, input, ids, /*budget=*/2, /*advertised_n=*/6);
  EXPECT_EQ(q.probe(0, 0), 1u);
  std::size_t second = q.probe(1, 0);
  EXPECT_THROW(q.probe(second, 0), ProbeBudgetExceeded);
  EXPECT_EQ(q.probes_used(), 2u);
  // A second rejected attempt must not drift the state further.
  EXPECT_THROW(q.probe(second, 0), ProbeBudgetExceeded);
  EXPECT_EQ(q.probes_used(), 2u);

#if LCL_OBS
  EXPECT_EQ(reg.counter("volume.probes").value(), probes_before + 2);
  EXPECT_EQ(reg.counter("volume.budget_exhausted").value(),
            exhausted_before + 2);
  EXPECT_EQ(reg.histogram("volume.probes_at_exhaustion").count(),
            exhaustion_records_before + 2);
  EXPECT_EQ(reg.histogram("volume.probes_at_exhaustion").max(), 2u);
#else
  (void)probes_before;
  (void)exhausted_before;
  (void)exhaustion_records_before;
#endif
}

#if LCL_OBS
/// End-to-end: running the RE engine under an active trace session yields
/// a parseable trace whose spans cover the run.
TEST(EngineObs, EmitsSpansUnderActiveSession) {
  const std::string path = testing::TempDir() + "lcl_obs_engine.jsonl";
  {
    MetricsOn on;
    obs::TraceSession session(path, obs::TraceFormat::kJsonl);
    obs::TraceSession* previous = obs::TraceSession::set_current(&session);
    SpeedupEngine engine(problems::any_orientation(2));
    SpeedupEngine::Options options;
    options.max_steps = 2;
    const auto outcome = engine.run(options);
    EXPECT_GE(outcome.steps.size(), 1u);
    obs::TraceSession::set_current(previous);
    session.close();
  }

  obs::ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(obs::parse_trace(read_file(path), &trace, &error)) << error;
  bool saw_run = false, saw_step = false;
  for (const auto& r : trace.records) {
    if (r.kind != obs::TraceRecord::Kind::kSpan) continue;
    if (r.name == "re/run") saw_run = true;
    if (r.name == "re/step") saw_step = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_step);

  const auto summary = obs::summarize(trace);
  EXPECT_GT(summary.wall_us, 0);
  EXPECT_GT(summary.top_level_us, 0);
}
#endif  // LCL_OBS

// --- Multi-threaded obs behaviour (exercised under the obs-tsan preset) ---
// These tests exist to put the instruments and the trace session under real
// contention: the batch pool shares both across workers, so "safe from one
// thread" is no longer enough.

TEST(MetricsThreads, InstrumentsAreRaceFreeUnderContention) {
  MetricsOn on;
  auto& reg = obs::registry();
  reg.reset();
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &reg]() {
      auto& counter = reg.counter("test.mt.counter");
      auto& gauge = reg.gauge("test.mt.gauge");
      auto& histogram = reg.histogram("test.mt.histogram");
      for (int i = 0; i < kOps; ++i) {
        counter.add(1);
        gauge.set(t * kOps + i);
        histogram.record(static_cast<std::uint64_t>(i));
        if (i % 1024 == 0) reg.snapshot();  // readers race the writers
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(reg.counter("test.mt.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  const auto& gauge = reg.gauge("test.mt.gauge");
  EXPECT_TRUE(gauge.ever_set());
  EXPECT_EQ(gauge.max(), (kThreads - 1) * kOps + (kOps - 1));
  EXPECT_EQ(gauge.min(), 0);
  const auto& histogram = reg.histogram("test.mt.histogram");
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(histogram.max(), static_cast<std::uint64_t>(kOps - 1));
  reg.reset();
}

TEST(MetricsThreads, GaugeConcurrentFirstSetKeepsBothExtremes) {
  // Regression: the old first-set fast path (exchange-then-store) let two
  // racing *first* setters overwrite each other's extreme. With the
  // sentinel scheme both values must always land.
  for (int round = 0; round < 200; ++round) {
    obs::Gauge gauge;
    std::atomic<bool> go{false};
    std::thread a([&]() {
      while (!go.load(std::memory_order_acquire)) {
      }
      gauge.set(5);
    });
    std::thread b([&]() {
      while (!go.load(std::memory_order_acquire)) {
      }
      gauge.set(-3);
    });
    go.store(true, std::memory_order_release);
    a.join();
    b.join();
    EXPECT_TRUE(gauge.ever_set());
    EXPECT_EQ(gauge.max(), 5) << "round " << round;
    EXPECT_EQ(gauge.min(), -3) << "round " << round;
  }
}

TEST(TraceThreads, ConcurrentEmittersProduceAWellFormedTrace) {
  const std::string path = testing::TempDir() + "lcl_obs_mt_trace.jsonl";
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 400;
  {
    obs::TraceSession session(path, obs::TraceFormat::kJsonl);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &session]() {
        for (int i = 0; i < kSpansPerThread; ++i) {
          const obs::TraceArg arg{"i", i};
          session.emit_span("mt/span", "test", t, 1, &arg, 1);
          if (i % 64 == 0) session.emit_instant("mt/tick", "test", nullptr, 0);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    session.close();
  }

  obs::ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(obs::parse_trace(read_file(path), &trace, &error)) << error;
  EXPECT_TRUE(trace.has_metrics_footer);
  std::size_t spans = 0;
  for (const auto& r : trace.records) {
    if (r.kind == obs::TraceRecord::Kind::kSpan) ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // The footer is the last record: nothing slipped in behind the trailer.
  ASSERT_FALSE(trace.records.empty());
  EXPECT_EQ(trace.records.back().kind, obs::TraceRecord::Kind::kMetrics);
}

TEST(TraceThreads, EmittersRacingCloseNeverCorruptTheFile) {
  const std::string path = testing::TempDir() + "lcl_obs_mt_close.jsonl";
  {
    obs::TraceSession session(path, obs::TraceFormat::kJsonl);
    std::atomic<bool> stop{false};
    std::vector<std::thread> emitters;
    for (int t = 0; t < 4; ++t) {
      emitters.emplace_back([&]() {
        // Keep emitting straight through close(); every record either lands
        // before the footer or is dropped - never written after it.
        for (int i = 0; i < 20000 && !stop.load(std::memory_order_relaxed);
             ++i) {
          session.emit_span("race/span", "test", 0, 1, nullptr, 0);
        }
      });
    }
    session.close();
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : emitters) thread.join();
    session.emit_instant("race/after-close", "test", nullptr, 0);  // dropped
  }

  obs::ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(obs::parse_trace(read_file(path), &trace, &error)) << error;
  EXPECT_TRUE(trace.has_metrics_footer);
  ASSERT_FALSE(trace.records.empty());
  EXPECT_EQ(trace.records.back().kind, obs::TraceRecord::Kind::kMetrics);
  for (const auto& r : trace.records) {
    EXPECT_NE(r.name, "race/after-close");
  }
}

}  // namespace
}  // namespace lcl
