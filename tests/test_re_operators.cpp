#include "re/operators.hpp"

#include <gtest/gtest.h>

#include "core/problems.hpp"
#include "re/reduce.hpp"

namespace lcl {
namespace {

/// Finds the derived label whose meaning is exactly `labels` (over the base
/// output alphabet of size `universe`).
Label label_for(const ReStep& step, std::size_t universe,
                std::initializer_list<std::uint32_t> labels) {
  const LabelSet want(universe, labels);
  for (std::size_t l = 0; l < step.meaning.size(); ++l) {
    if (step.meaning[l] == want) return static_cast<Label>(l);
  }
  throw std::logic_error("label_for: no such derived label");
}

TEST(ApplyR, TwoColoringHandComputation) {
  // Base: 2-coloring at Delta=2. Sigma_out = {A, B}; N = const multisets;
  // E = {{A,B}}.
  const auto pi = problems::two_coloring(2);
  const auto step = apply_r(pi);
  ASSERT_EQ(step.meaning.size(), 3u);  // {A}, {B}, {A,B}

  const Label a = label_for(step, 2, {0});
  const Label b = label_for(step, 2, {1});
  const Label ab = label_for(step, 2, {0, 1});
  const auto& r = step.problem;

  // Edge constraint (FORALL): only {A} vs {B} survives.
  EXPECT_TRUE(r.edge_allows(a, b));
  EXPECT_FALSE(r.edge_allows(a, a));
  EXPECT_FALSE(r.edge_allows(b, b));
  EXPECT_FALSE(r.edge_allows(ab, a));
  EXPECT_FALSE(r.edge_allows(ab, b));
  EXPECT_FALSE(r.edge_allows(ab, ab));

  // Node constraint (EXISTS a selection in N = {AA, BB}).
  EXPECT_TRUE(r.node_allows(Configuration({a, a})));
  EXPECT_TRUE(r.node_allows(Configuration({b, b})));
  EXPECT_FALSE(r.node_allows(Configuration({a, b})));
  EXPECT_TRUE(r.node_allows(Configuration({ab, a})));
  EXPECT_TRUE(r.node_allows(Configuration({ab, b})));
  EXPECT_TRUE(r.node_allows(Configuration({ab, ab})));
  // Degree 1: N^1 = {A}, {B}.
  EXPECT_TRUE(r.node_allows(Configuration({a})));
  EXPECT_TRUE(r.node_allows(Configuration({ab})));
}

TEST(ApplyRbar, TwoColoringHandComputation) {
  const auto pi = problems::two_coloring(2);
  const auto step = apply_rbar(pi);
  const Label a = label_for(step, 2, {0});
  const Label b = label_for(step, 2, {1});
  const Label ab = label_for(step, 2, {0, 1});
  const auto& rb = step.problem;

  // Edge constraint (EXISTS): any pair containing complementary elements.
  EXPECT_TRUE(rb.edge_allows(a, b));
  EXPECT_FALSE(rb.edge_allows(a, a));
  EXPECT_TRUE(rb.edge_allows(ab, a));
  EXPECT_TRUE(rb.edge_allows(ab, b));
  EXPECT_TRUE(rb.edge_allows(ab, ab));

  // Node constraint (FORALL selections in N).
  EXPECT_TRUE(rb.node_allows(Configuration({a, a})));
  EXPECT_TRUE(rb.node_allows(Configuration({b, b})));
  EXPECT_FALSE(rb.node_allows(Configuration({a, b})));
  EXPECT_FALSE(rb.node_allows(Configuration({ab, a})));
  EXPECT_FALSE(rb.node_allows(Configuration({ab, ab})));
}

TEST(ApplyR, GRespectsInputRestrictions) {
  // forbidden_color: g(forbid_c) excludes color c; in R, a derived label is
  // allowed for an input iff its meaning avoids the forbidden color.
  const auto pi = problems::forbidden_color(2, 2);
  const auto step = apply_r(pi);
  const Label forbid0 = pi.input_alphabet().at("forbid0");
  const Label free = pi.input_alphabet().at("free");

  const Label only0 = label_for(step, 2, {0});
  const Label only1 = label_for(step, 2, {1});
  const Label both = label_for(step, 2, {0, 1});
  EXPECT_FALSE(step.problem.allowed_outputs(forbid0).contains(only0));
  EXPECT_TRUE(step.problem.allowed_outputs(forbid0).contains(only1));
  EXPECT_FALSE(step.problem.allowed_outputs(forbid0).contains(both));
  EXPECT_TRUE(step.problem.allowed_outputs(free).contains(both));
}

TEST(ApplyR, BlowupGuard) {
  const auto pi = problems::coloring(3, 2);
  ReLimits limits;
  limits.max_labels = 3;  // 2^3 - 1 = 7 > 3
  EXPECT_THROW(apply_r(pi, limits), ReBlowupError);

  ReLimits config_limits;
  config_limits.max_configs = 5;
  EXPECT_THROW(apply_r(pi, config_limits), ReBlowupError);
}

TEST(ApplyR, MeaningNamesAreReadable) {
  const auto pi = problems::two_coloring(2);
  const auto step = apply_r(pi);
  bool found = false;
  for (Label l = 0; l < step.problem.output_alphabet().size(); ++l) {
    if (step.problem.output_alphabet().name(l) == "{c0,c1}") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Reduce, TrimsUnusableLabels) {
  // A problem with a label that appears in no edge configuration.
  Alphabet in({"-"});
  Alphabet out({"x", "y", "dead"});
  NodeEdgeCheckableLcl::Builder b("with-dead-label", in, out, 2);
  b.allow_node({0, 0}).allow_node({1, 1}).allow_node({0}).allow_node({1});
  b.allow_node({2, 2});  // dead appears in a node config...
  b.allow_edge(0, 1);    // ...but has no edge partner
  b.unrestricted_inputs();
  const auto problem = b.build();

  const auto red = reduce(problem);
  EXPECT_EQ(red.problem.output_alphabet().size(), 2u);
  EXPECT_EQ(red.old_to_new[2], Reduction::kDropped);
  EXPECT_NE(red.old_to_new[0], Reduction::kDropped);
  // Mapping round-trips.
  for (Label l = 0; l < red.problem.output_alphabet().size(); ++l) {
    EXPECT_EQ(red.old_to_new[red.new_to_old[l]], l);
  }
}

TEST(Reduce, MergesEquivalentLabels) {
  // Two interchangeable labels y1, y2: same partners, same node contexts.
  Alphabet in({"-"});
  Alphabet out({"x", "y1", "y2"});
  NodeEdgeCheckableLcl::Builder b("mergeable", in, out, 2);
  b.allow_node({0, 1}).allow_node({0, 2});  // x with either y
  b.allow_node({0}).allow_node({1}).allow_node({2});
  b.allow_edge(0, 1).allow_edge(0, 2);
  b.unrestricted_inputs();
  const auto problem = b.build();

  const auto red = reduce(problem);
  EXPECT_EQ(red.problem.output_alphabet().size(), 2u);
  EXPECT_EQ(red.old_to_new[1], red.old_to_new[2]);
  EXPECT_NE(red.old_to_new[0], red.old_to_new[1]);
}

TEST(Reduce, FixedProblemsUntouched) {
  for (const auto& problem :
       {problems::coloring(3, 3), problems::sinkless_orientation(3),
        problems::mis(3)}) {
    const auto red = reduce(problem);
    EXPECT_EQ(red.problem.output_alphabet().size(),
              problem.output_alphabet().size())
        << problem.name();
    EXPECT_EQ(red.problem.total_node_configs(), problem.total_node_configs());
    EXPECT_EQ(red.problem.edge_configs().size(),
              problem.edge_configs().size());
  }
}

TEST(Reduce, ThrowsWhenNothingUsable) {
  Alphabet in({"-"});
  Alphabet out({"x", "y"});
  NodeEdgeCheckableLcl::Builder b("hopeless", in, out, 2);
  b.allow_node({0});   // only x at nodes
  b.allow_edge(1, 1);  // only y at edges
  b.unrestricted_inputs();
  const auto problem = b.build();
  EXPECT_THROW(reduce(problem), std::runtime_error);
}

TEST(Reduce, RApplicationShrinks) {
  // R of 3-coloring at Delta=2 has 7 raw labels; reduction should shrink it
  // (e.g. {c0,c1,c2} has no edge partner under the FORALL constraint).
  const auto pi = problems::coloring(3, 2);
  const auto step = apply_r(pi);
  EXPECT_EQ(step.problem.output_alphabet().size(), 7u);
  const auto red = reduce(step.problem);
  EXPECT_LT(red.problem.output_alphabet().size(), 7u);
}

}  // namespace
}  // namespace lcl
