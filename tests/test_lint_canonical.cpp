// Tests for lint/canonical.hpp - the label-permutation canonicalization
// tier: canonical forms and their evidence maps, automorphism detection
// (orders, saturation, generating witnesses), permutation-invariant
// signatures at small and LabelMaskW-tier alphabet sizes (96 and 512
// labels), the analyzer's L050/L051/L052 surface, the engine's
// `canonicalize_iterates` parity fence, and the lcl_lint CLI's cross-file,
// SARIF, and --fix semantics.

#include "lint/canonical.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "lint/analyzer.hpp"
#include "lint/diagnostic.hpp"
#include "lint/sarif.hpp"
#include "lint/spec.hpp"
#include "lint/spec_io.hpp"
#include "re/engine.hpp"
#include "util/rng.hpp"

namespace lcl {
namespace {

using lint::CanonicalForm;
using lint::Code;
using lint::Diagnostic;
using lint::LintOptions;
using lint::LintReport;
using lint::ProblemSpec;

int count_code(const LintReport& report, const char* code) {
  return static_cast<int>(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

LintOptions semantic_options() {
  LintOptions options;
  options.canonical_labels = true;
  return options;
}

/// `<prefix>NNN`, zero-padded to three digits, so generated wide-alphabet
/// names sort the same way their indices do. (Built with append rather
/// than operator+ - GCC 12's -Werror=restrict misfires on the
/// concatenation idiom at -O2.)
std::string padded_name(char prefix, std::size_t l) {
  const std::string digits = std::to_string(l);
  std::string name(1, prefix);
  for (std::size_t i = digits.size(); i < 3; ++i) name.push_back('0');
  name.append(digits);
  return name;
}

/// A fixed-point-free output permutation `l -> (l * mult + add) mod k` with
/// `gcd(mult, k) == 1`, so permuted copies genuinely scramble every label.
std::vector<Label> affine_permutation(std::size_t k, std::size_t mult,
                                      std::size_t add) {
  std::vector<Label> sigma(k);
  for (std::size_t l = 0; l < k; ++l) {
    sigma[l] = static_cast<Label>((l * mult + add) % k);
  }
  return sigma;
}

/// A wide "banded path" spec with `k` output labels: node configurations
/// `{l}` and `{l, l}`, edge configurations `{l, l+1}` along a path, and 8
/// input bands with `g[i] = {l : l % 8 == i}`. The band pattern is
/// aperiodic relative to the path ends, so the automorphism group is
/// trivial and invariant refinement discriminates every label - canonical
/// forms stay cheap even at 512 labels.
ProblemSpec wide_path_spec(std::size_t k) {
  ProblemSpec spec;
  spec.name = "wide-path-" + std::to_string(k);
  spec.max_degree = 2;
  for (std::size_t i = 0; i < 8; ++i) {
    spec.inputs.push_back(padded_name('b', i));
    spec.g.emplace_back();
  }
  for (std::size_t l = 0; l < k; ++l) {
    spec.outputs.push_back(padded_name('x', l));
    const auto label = static_cast<std::int64_t>(l);
    spec.node_configs.push_back({label});
    spec.node_configs.push_back({label, label});
    if (l + 1 < k) {
      spec.edge_configs.push_back({label, label + 1});
    }
    spec.g[l % 8].push_back(label);
  }
  return spec;
}

/// A fully label-symmetric spec: `k` interchangeable output labels, every
/// unordered pair a valid edge. |Aut| = k! - saturating the 64-bit order
/// counter for any `k >= 21`.
ProblemSpec symmetric_spec(std::size_t k) {
  ProblemSpec spec;
  spec.name = "symmetric-" + std::to_string(k);
  spec.max_degree = 1;
  spec.inputs.push_back("-");
  spec.g.emplace_back();
  for (std::size_t l = 0; l < k; ++l) {
    spec.outputs.push_back(padded_name('s', l));
    spec.node_configs.push_back({static_cast<std::int64_t>(l)});
    spec.g[0].push_back(static_cast<std::int64_t>(l));
    for (std::size_t m = l + 1; m < k; ++m) {
      spec.edge_configs.push_back({static_cast<std::int64_t>(l),
                                   static_cast<std::int64_t>(m)});
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Canonical forms and evidence maps.

TEST(Canonical, EvidenceMapsAreInversePermutations) {
  const auto spec = lint::spec_from_problem(problems::maximal_matching(3));
  const auto form = lint::canonical_form(spec);
  ASSERT_TRUE(form.complete);
  const std::size_t k = spec.outputs.size();
  ASSERT_EQ(form.old_to_new.size(), k);
  ASSERT_EQ(form.new_to_old.size(), k);
  for (std::size_t l = 0; l < k; ++l) {
    EXPECT_EQ(form.new_to_old[form.old_to_new[l]], static_cast<Label>(l));
  }
  // The canonical spec really is the permuted original.
  EXPECT_TRUE(lint::permute_spec(lint::canonicalize(spec),
                                 form.old_to_new) == form.spec);
}

TEST(Canonical, CanonicalFormIsAFixpoint) {
  for (const auto& problem :
       {problems::two_coloring(2), problems::mis(3),
        problems::sinkless_orientation(3)}) {
    const auto form =
        lint::canonical_form(lint::spec_from_problem(problem));
    ASSERT_TRUE(form.complete);
    const auto again = lint::canonical_form(form.spec);
    EXPECT_TRUE(again.spec == form.spec);
    for (std::size_t l = 0; l < again.old_to_new.size(); ++l) {
      EXPECT_EQ(again.old_to_new[l], static_cast<Label>(l));
    }
  }
}

TEST(Canonical, PermutedPairsCanonicalizeIdentically) {
  for (const auto& problem :
       {problems::two_coloring(2), problems::maximal_matching(3),
        problems::coloring(3, 2), problems::any_orientation(2)}) {
    const auto spec = lint::spec_from_problem(problem);
    const std::size_t k = spec.outputs.size();
    const auto sigma = affine_permutation(k, k == 4 ? 3 : k - 1, 1);
    const auto permuted = lint::permute_spec(spec, sigma);

    const auto f1 = lint::canonical_form(spec);
    const auto f2 = lint::canonical_form(permuted);
    ASSERT_TRUE(f1.complete);
    ASSERT_TRUE(f2.complete);
    // Byte-for-byte equal, label names included (names ride along).
    EXPECT_TRUE(f1.spec == f2.spec) << spec.name;
    EXPECT_EQ(lint::spec_signature(f1.spec), lint::spec_signature(f2.spec));
    EXPECT_EQ(lint::canonical_signature(spec),
              lint::canonical_signature(permuted));
    EXPECT_EQ(f1.automorphism_order, f2.automorphism_order);
  }
}

TEST(Canonical, AutomorphismEvidence) {
  // 2-coloring: the color swap is the one nontrivial automorphism.
  const auto two_col = lint::spec_from_problem(problems::two_coloring(2));
  const auto f2 = lint::canonical_form(two_col);
  EXPECT_EQ(f2.automorphism_order, 2u);
  EXPECT_FALSE(f2.automorphism_order_saturated);
  ASSERT_FALSE(f2.automorphism_generator.empty());
  EXPECT_TRUE(lint::same_structure(
      lint::permute_spec(two_col, f2.automorphism_generator), two_col));

  // 3-coloring: all 3! = 6 color permutations fix the constraint system.
  const auto three_col = lint::spec_from_problem(problems::coloring(3, 2));
  const auto f3 = lint::canonical_form(three_col);
  EXPECT_EQ(f3.automorphism_order, 6u);
  EXPECT_FALSE(f3.automorphism_order_saturated);

  // Asymmetric problem: trivial group, no generator.
  const auto mm = lint::spec_from_problem(problems::maximal_matching(3));
  const auto fm = lint::canonical_form(mm);
  EXPECT_EQ(fm.automorphism_order, 1u);
  EXPECT_TRUE(fm.automorphism_generator.empty());
}

TEST(Canonical, SaturatedAutomorphismOrder) {
  // 64 fully interchangeable labels: |Aut| = 64!, far past 64 bits. The
  // symmetric-class fast path must detect the class without any
  // branch-and-bound and report saturation.
  const auto spec = symmetric_spec(64);
  const auto form = lint::canonical_form(spec);
  ASSERT_TRUE(form.complete);
  EXPECT_TRUE(form.automorphism_order_saturated);
  EXPECT_GT(form.automorphism_order, 1u);
  ASSERT_FALSE(form.automorphism_generator.empty());
  EXPECT_TRUE(lint::same_structure(
      lint::permute_spec(spec, form.automorphism_generator), spec));
}

// ---------------------------------------------------------------------------
// Wide alphabets: the LabelMaskW tier (> 64 labels).

TEST(CanonicalWide, PermutedPairsAgreeAt96And512Labels) {
  for (const std::size_t k : {std::size_t{96}, std::size_t{512}}) {
    const auto spec = wide_path_spec(k);
    const auto sigma = affine_permutation(k, k == 96 ? 11 : 27, 3);
    const auto permuted = lint::permute_spec(spec, sigma);
    ASSERT_FALSE(spec == permuted);

    const auto f1 = lint::canonical_form(spec);
    const auto f2 = lint::canonical_form(permuted);
    ASSERT_TRUE(f1.complete) << k;
    ASSERT_TRUE(f2.complete) << k;
    EXPECT_TRUE(f1.spec == f2.spec) << k;
    EXPECT_EQ(lint::spec_signature(f1.spec), lint::spec_signature(f2.spec));
    // The banded path is asymmetric: refinement alone must fully
    // discriminate, leaving a trivial automorphism group.
    EXPECT_EQ(f1.automorphism_order, 1u);
  }
}

TEST(CanonicalWide, FullLintSweepAt96Labels) {
  const auto options = semantic_options();
  const auto base = wide_path_spec(96);

  // The base spec is clean: no errors, no warnings.
  const auto clean = lint::lint_spec(base, options);
  EXPECT_TRUE(clean.structurally_valid);
  EXPECT_EQ(clean.status(), 0) << clean.to_text();
  EXPECT_TRUE(clean.canonical_complete);

  // L001: an undeclared label is still an error at 96 labels.
  auto invalid = base;
  invalid.node_configs.push_back({9999});
  EXPECT_GE(count_code(lint::lint_spec(invalid, options), Code::kAlphabetArity),
            1);

  // L010/L011/L012: a 97th label with no edge partner and no permitting
  // input is dead, its configuration vacuous, and an input permitting only
  // it starved.
  auto dead = base;
  dead.outputs.push_back("zz");
  dead.node_configs.push_back({96});
  dead.inputs.push_back("b8");
  dead.g.push_back({96});
  const auto dead_report = lint::lint_spec(dead, options);
  EXPECT_GE(count_code(dead_report, Code::kDeadLabel), 1);
  EXPECT_GE(count_code(dead_report, Code::kVacuousConfig), 1);
  EXPECT_GE(count_code(dead_report, Code::kStarvedInput), 1);

  // L013: raising max_degree without degree-3 configurations.
  auto unpopulated = base;
  unpopulated.max_degree = 3;
  EXPECT_GE(count_code(lint::lint_spec(unpopulated, options),
                       Code::kUnpopulatedDegree),
            1);

  // L020: no edge configurations starves every label - trivially
  // unsolvable.
  auto unsolvable = base;
  unsolvable.edge_configs.clear();
  const auto unsolvable_report = lint::lint_spec(unsolvable, options);
  EXPECT_EQ(count_code(unsolvable_report, Code::kUnsolvable), 1);
  EXPECT_TRUE(unsolvable_report.trivially_unsolvable);

  // L030: a universal label that every input permits makes the wide spec
  // 0-round trivial.
  auto trivial = base;
  trivial.outputs.push_back("uni");
  trivial.node_configs.push_back({96});
  trivial.node_configs.push_back({96, 96});
  trivial.edge_configs.push_back({96, 96});
  for (auto& row : trivial.g) row.push_back(96);
  const auto trivial_report = lint::lint_spec(trivial, options);
  EXPECT_EQ(count_code(trivial_report, Code::kZeroRoundTrivial), 1);
  EXPECT_GE(trivial_report.zero_round_label, 0);

  // L040/L041: duplicate and unsorted configurations.
  auto duplicate = base;
  duplicate.node_configs.push_back(duplicate.node_configs.front());
  EXPECT_GE(count_code(lint::lint_spec(duplicate, options),
                       Code::kDuplicateConfig),
            1);
  auto unsorted = base;
  unsorted.edge_configs.push_back({5, 4});
  EXPECT_GE(count_code(lint::lint_spec(unsorted, options),
                       Code::kNonCanonicalConfig),
            1);

  // L050: a permuted copy and the original canonicalize to the same spec;
  // at most one of them is the canonical representative, so at least one
  // reports non-canonical label order.
  const auto permuted = lint::permute_spec(base, affine_permutation(96, 11, 3));
  const auto permuted_report = lint::lint_spec(permuted, options);
  EXPECT_GE(count_code(clean, Code::kNonCanonicalLabels) +
                count_code(permuted_report, Code::kNonCanonicalLabels),
            1);
  EXPECT_TRUE(clean.canonical == permuted_report.canonical);

  // L052: the saturated symmetric spec reports its automorphism.
  const auto symmetric_report = lint::lint_spec(symmetric_spec(64), options);
  EXPECT_EQ(count_code(symmetric_report, Code::kLabelSymmetry), 1);
  EXPECT_TRUE(symmetric_report.automorphism_order_saturated);
}

// ---------------------------------------------------------------------------
// Engine parity: canonicalize_iterates is pure renaming.

TEST(CanonicalEngine, CanonicalizedIteratesPreserveVerdictAndSynthesis) {
  SpeedupEngine plain_engine(problems::any_orientation(2));
  SpeedupEngine canonical_engine(problems::any_orientation(2));
  SpeedupEngine::Options options;
  options.max_steps = 3;
  const auto plain = plain_engine.run(options);
  options.canonicalize_iterates = true;
  const auto canonical = canonical_engine.run(options);

  EXPECT_EQ(canonical.zero_round_step, plain.zero_round_step);
  EXPECT_EQ(canonical.detected_unsolvable, plain.detected_unsolvable);
  EXPECT_EQ(canonical.fixed_point, plain.fixed_point);
  EXPECT_EQ(canonical.budget_exhausted, plain.budget_exhausted);
  ASSERT_GE(canonical.zero_round_step, 1);

  // The synthesized algorithm built over canonicalized iterates must still
  // solve the *original* problem.
  const auto algorithm = canonical_engine.synthesize();
  SplitRng rng(11);
  const auto problem = problems::any_orientation(2);
  for (std::size_t n : {2u, 7u, 40u}) {
    Graph g = make_path(n);
    const auto input = uniform_labeling(g, 0);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto output = run_ball_algorithm(*algorithm, g, input, ids);
    const auto check = check_solution(problem, g, input, output);
    EXPECT_TRUE(check.ok()) << "n=" << n << "\n" << check.to_string();
  }

  // A hardness verdict is relabeling-invariant too.
  SpeedupEngine fixed_plain(problems::sinkless_orientation(3));
  SpeedupEngine fixed_canonical(problems::sinkless_orientation(3));
  options.canonicalize_iterates = false;
  const auto fp = fixed_plain.run(options);
  options.canonicalize_iterates = true;
  const auto fc = fixed_canonical.run(options);
  EXPECT_EQ(fc.zero_round_step, fp.zero_round_step);
  EXPECT_EQ(fc.fixed_point, fp.fixed_point);
}

// ---------------------------------------------------------------------------
// The lcl_lint CLI: cross-file L051, SARIF output, --fix semantics.

class CanonicalCliTest : public ::testing::Test {
 protected:
  static std::string write_spec(const std::string& name,
                                const ProblemSpec& spec) {
    const std::string path = ::testing::TempDir() + "lcl_canon_" + name;
    lint::save_spec(path, spec);
    return path;
  }

  static int run_cli(const std::string& args) {
    const std::string command =
        std::string(LCL_LINT_CLI_PATH) + " " + args + " >/dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
};

TEST_F(CanonicalCliTest, CrossFileDuplicatesAndSarif) {
  const auto spec = lint::spec_from_problem(problems::maximal_matching(2));
  const auto permuted =
      lint::permute_spec(spec, affine_permutation(spec.outputs.size(), spec.outputs.size() - 1, 1));
  const auto a = write_spec("dup_a.json", spec);
  const auto b = write_spec("dup_b.json", permuted);
  const auto sarif = ::testing::TempDir() + "lcl_canon_dup.sarif";

  // Each file alone is clean; together the later one is an L051 warning.
  EXPECT_EQ(run_cli(a), 0);
  EXPECT_EQ(run_cli(b), 0);
  EXPECT_EQ(run_cli(a + " " + b + " --sarif=" + sarif), 1);

  const auto log = read_file(sarif);
  EXPECT_NE(log.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(log.find("\"ruleId\":\"L051\""), std::string::npos);
  // The rule table carries every published code, fired or not.
  for (const auto& rule : lint::sarif_rules()) {
    EXPECT_NE(log.find("\"id\":\"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
}

TEST_F(CanonicalCliTest, DirectoryArgumentsExpandToSortedJsonFiles) {
  const std::string dir = ::testing::TempDir() + "lcl_canon_dir";
  std::filesystem::create_directory(dir);
  const auto spec = lint::spec_from_problem(problems::maximal_matching(2));
  const auto permuted =
      lint::permute_spec(spec, affine_permutation(spec.outputs.size(), spec.outputs.size() - 1, 1));
  lint::save_spec(dir + "/a.json", spec);
  lint::save_spec(dir + "/b.json", permuted);
  std::ofstream(dir + "/notes.txt") << "not a spec\n";

  // The directory expands to both *.json files - the duplicate fires.
  EXPECT_EQ(run_cli(dir), 1);
}

TEST_F(CanonicalCliTest, FixRefusesPermutationDuplicates) {
  const auto spec = lint::spec_from_problem(problems::maximal_matching(2));
  const auto permuted =
      lint::permute_spec(spec, affine_permutation(spec.outputs.size(), spec.outputs.size() - 1, 1));
  const auto a = write_spec("fixdup_a.json", spec);
  const auto b = write_spec("fixdup_b.json", permuted);
  const auto before_a = read_file(a);
  const auto before_b = read_file(b);

  // L051 is not fixable: the whole batch is refused and nothing written.
  EXPECT_EQ(run_cli("--fix " + a + " " + b), 3);
  EXPECT_EQ(read_file(a), before_a);
  EXPECT_EQ(read_file(b), before_b);
}

TEST_F(CanonicalCliTest, FixAppliesCanonicalLabelOrder) {
  // Pick whichever of original/permuted is NOT the canonical
  // representative, so the file starts with an L050 finding.
  const auto spec = lint::spec_from_problem(problems::maximal_matching(2));
  const auto options = semantic_options();
  auto candidate = spec;
  if (count_code(lint::lint_spec(candidate, options),
                 Code::kNonCanonicalLabels) == 0) {
    candidate =
        lint::permute_spec(spec, affine_permutation(spec.outputs.size(), spec.outputs.size() - 1, 1));
  }
  ASSERT_GE(count_code(lint::lint_spec(candidate, options),
                       Code::kNonCanonicalLabels),
            1);

  const auto path = write_spec("fix050.json", candidate);
  EXPECT_EQ(run_cli("--fix " + path), 0);  // info-only findings
  bool wrapped = true;
  const auto fixed = lint::spec_from_json(read_file(path), &wrapped);
  EXPECT_FALSE(wrapped);
  EXPECT_EQ(count_code(lint::lint_spec(fixed, options),
                       Code::kNonCanonicalLabels),
            0);
  // Fixing preserved the constraint system up to relabeling.
  EXPECT_EQ(lint::canonical_signature(fixed), lint::canonical_signature(spec));
}

}  // namespace
}  // namespace lcl
