#include "util/label_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lcl {
namespace {

TEST(LabelSet, EmptyByDefault) {
  LabelSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.universe(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_FALSE(s.contains(i));
}

TEST(LabelSet, InsertEraseContains) {
  LabelSet s(100);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(99);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(50));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.size(), 3u);
}

TEST(LabelSet, OutOfRangeThrows) {
  LabelSet s(5);
  EXPECT_THROW(s.insert(5), std::out_of_range);
  EXPECT_THROW(s.contains(100), std::out_of_range);
  EXPECT_THROW((LabelSet{3, {4}}), std::out_of_range);
}

TEST(LabelSet, MixedUniverseThrows) {
  LabelSet a(5), b(6);
  EXPECT_THROW(a.union_with(b), std::invalid_argument);
  EXPECT_THROW(a.is_subset_of(b), std::invalid_argument);
}

TEST(LabelSet, FullSet) {
  for (std::size_t universe : {1u, 63u, 64u, 65u, 130u}) {
    const LabelSet s = LabelSet::full(universe);
    EXPECT_EQ(s.size(), universe);
    for (std::uint32_t i = 0; i < universe; ++i) EXPECT_TRUE(s.contains(i));
  }
}

TEST(LabelSet, SetAlgebra) {
  const LabelSet a(8, {1, 2, 3});
  const LabelSet b(8, {3, 4, 5});
  EXPECT_EQ(a.union_with(b), (LabelSet{8, {1, 2, 3, 4, 5}}));
  EXPECT_EQ(a.intersect_with(b), (LabelSet{8, {3}}));
  EXPECT_EQ(a.minus(b), (LabelSet{8, {1, 2}}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.minus(b).intersects(b));
}

TEST(LabelSet, SubsetRelation) {
  const LabelSet a(8, {1, 2});
  const LabelSet b(8, {1, 2, 3});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(LabelSet(8).is_subset_of(a));
}

TEST(LabelSet, ToVectorSortedAndMin) {
  LabelSet s(70, {65, 3, 40});
  const auto v = s.to_vector();
  EXPECT_EQ(v, (std::vector<std::uint32_t>{3, 40, 65}));
  EXPECT_EQ(s.min(), 3u);
  EXPECT_THROW(LabelSet(5).min(), std::logic_error);
}

TEST(LabelSet, OrderingMatchesBitValue) {
  const LabelSet a(8, {0});
  const LabelSet b(8, {1});
  const LabelSet c(8, {0, 1});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_FALSE(a < a);
}

TEST(LabelSet, HashDistinguishesContents) {
  const LabelSet a(8, {1});
  const LabelSet b(8, {2});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), LabelSet(8, {1}).hash());
}

TEST(LabelSet, ToStringWithNamer) {
  const LabelSet s(4, {0, 2});
  EXPECT_EQ(s.to_string(), "{0,2}");
  EXPECT_EQ(s.to_string([](std::uint32_t l) {
    return std::string(1, static_cast<char>('A' + l));
  }),
            "{A,C}");
}

TEST(AllNonemptySubsets, CountAndContents) {
  const auto subsets = all_nonempty_subsets(3);
  EXPECT_EQ(subsets.size(), 7u);
  // Sorted ascending by bit value; first is {0}, last {0,1,2}.
  EXPECT_EQ(subsets.front(), (LabelSet{3, {0}}));
  EXPECT_EQ(subsets.back(), LabelSet::full(3));
  // No duplicates.
  auto copy = subsets;
  std::sort(copy.begin(), copy.end());
  EXPECT_TRUE(std::adjacent_find(copy.begin(), copy.end()) == copy.end());
}

TEST(AllNonemptySubsets, GuardsAgainstBlowup) {
  EXPECT_THROW(all_nonempty_subsets(22), std::invalid_argument);
  EXPECT_NO_THROW(all_nonempty_subsets(18, 18));
}

}  // namespace
}  // namespace lcl
