#include "local/failure.hpp"

#include <gtest/gtest.h>

#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/linial.hpp"
#include "local/rand_coloring.hpp"

namespace lcl {
namespace {

struct Setup {
  Graph graph;
  HalfEdgeLabeling input;
  IdAssignment ids;
  NodeEdgeCheckableLcl problem;
};

Setup make_setup(std::size_t n) {
  SplitRng rng(n);
  Graph g = make_random_tree(n, 3, rng);
  auto input = uniform_labeling(g, 0);
  auto ids = random_distinct_ids(g, 3, rng);
  return {std::move(g), std::move(input), std::move(ids),
          problems::coloring(4, 3)};
}

TEST(LocalFailure, DeterministicCorrectAlgorithmHasZeroFailure) {
  auto s = make_setup(60);
  std::uint64_t id_range = 0;
  for (auto id : s.ids) id_range = std::max(id_range, id + 1);
  const LinialColoring algo(3, id_range);
  const auto estimate = estimate_local_failure(algo, s.problem, s.graph,
                                               s.input, s.ids, 10);
  EXPECT_EQ(estimate.local_failure, 0.0);
  EXPECT_EQ(estimate.global_failure, 0.0);
  EXPECT_EQ(estimate.trials, 10);
}

TEST(LocalFailure, UncappedRandomColoringEventuallyPerfect) {
  auto s = make_setup(60);
  const RandomGreedyColoring algo(3);
  const auto estimate = estimate_local_failure(algo, s.problem, s.graph,
                                               s.input, s.ids, 20);
  EXPECT_EQ(estimate.local_failure, 0.0);
}

TEST(LocalFailure, CapZeroFailsBadly) {
  auto s = make_setup(120);
  const CappedRandomColoring algo(3, 0);
  const auto estimate = estimate_local_failure(algo, s.problem, s.graph,
                                               s.input, s.ids, 30);
  // Everyone outputs color 0: essentially every edge is monochromatic.
  EXPECT_GT(estimate.local_failure, 0.9);
  EXPECT_EQ(estimate.global_failure, 1.0);
}

TEST(LocalFailure, FailureDecreasesWithRoundCap) {
  auto s = make_setup(150);
  double previous = 1.1;
  for (const int cap : {0, 4, 10}) {
    const CappedRandomColoring algo(3, cap);
    const auto estimate = estimate_local_failure(algo, s.problem, s.graph,
                                                 s.input, s.ids, 60);
    EXPECT_LE(estimate.local_failure, previous);
    previous = estimate.local_failure + 0.05;  // allow sampling noise
  }
}

TEST(LocalFailure, LargeCapMatchesUncapped) {
  auto s = make_setup(80);
  const CappedRandomColoring capped(3, 1000);
  const auto estimate = estimate_local_failure(capped, s.problem, s.graph,
                                               s.input, s.ids, 10);
  EXPECT_EQ(estimate.local_failure, 0.0);
}

TEST(LocalFailure, ValidatesTrials) {
  auto s = make_setup(10);
  const CappedRandomColoring algo(3, 2);
  EXPECT_THROW(estimate_local_failure(algo, s.problem, s.graph, s.input,
                                      s.ids, 0),
               std::invalid_argument);
}

TEST(CongestCounters, LinialMessagesAreSmall) {
  // Linial's states are two words - well within CONGEST message size; the
  // engine now reports this.
  auto s = make_setup(64);
  std::uint64_t id_range = 0;
  for (auto id : s.ids) id_range = std::max(id_range, id + 1);
  const LinialColoring algo(3, id_range);
  const auto result = run_synchronous(algo, s.graph, s.input, s.ids, 1);
  EXPECT_LE(result.max_message_words, 2u);
  EXPECT_GE(result.max_message_words, 1u);
}

}  // namespace
}  // namespace lcl
