// The shared HTTP transport: server lifecycle, keep-alive, transport-level
// error mapping (400/408/413/431/501/503), graceful drain, and the
// validating client (POST, status/header capture, truncation/oversize
// detection).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "svc/http.hpp"

namespace lcl::svc {
namespace {

HttpServer::Options echo_options() {
  HttpServer::Options options;
  options.handler = [](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/echo") {
      response.body = request.method + " " + request.target + " " +
                      request.body;
    } else if (request.path == "/throw") {
      throw std::runtime_error("handler exploded");
    } else {
      response.status = 404;
      response.body = "nope";
    }
    return response;
  };
  return options;
}

/// Blocking raw-socket connection to the server under test, for the cases
/// the validating client cannot produce (torn requests, pipelining).
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) const {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until the peer closes or `until` is seen.
  std::string read_until_close() const {
    std::string out;
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Reads one response (headers + Content-Length body) off a keep-alive
  /// connection without consuming the next one.
  std::string read_one_response() const {
    std::string out;
    char c = 0;
    std::size_t body = 0;
    // Headers, byte by byte (test-only; simplicity over speed).
    while (out.find("\r\n\r\n") == std::string::npos) {
      if (::recv(fd_, &c, 1, 0) != 1) return out;
      out.push_back(c);
    }
    const auto pos = out.find("Content-Length: ");
    if (pos != std::string::npos) {
      body = static_cast<std::size_t>(
          std::stoul(out.substr(pos + std::strlen("Content-Length: "))));
    }
    while (body-- > 0) {
      if (::recv(fd_, &c, 1, 0) != 1) return out;
      out.push_back(c);
    }
    return out;
  }

 private:
  int fd_ = -1;
};

TEST(SvcHttpServer, StartsOnEphemeralPortAndStops) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(SvcHttpServer, StartWithoutHandlerFails) {
  HttpServer server{HttpServer::Options{}};
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.error().empty());
}

TEST(SvcHttpServer, ServesGetAndPost) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();

  const auto get = http_request("127.0.0.1", server.port(), "GET", "/echo");
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "GET /echo ");

  const auto post = http_request("127.0.0.1", server.port(), "POST", "/echo",
                                 "hello body");
  EXPECT_EQ(post.status, 200);
  EXPECT_EQ(post.body, "POST /echo hello body");

  // Status line and headers are captured, not just the body.
  EXPECT_EQ(post.status_line, "HTTP/1.1 200 OK");
  ASSERT_NE(post.header("Content-Type"), nullptr);
  EXPECT_EQ(*post.header("content-type"), "text/plain; charset=utf-8");
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(SvcHttpServer, HandlerRoutesNotFoundAndExceptionsBecome500) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(http_request("127.0.0.1", server.port(), "GET", "/nope").status,
            404);
  EXPECT_EQ(http_request("127.0.0.1", server.port(), "GET", "/throw").status,
            500);
}

TEST(SvcHttpServer, KeepAliveServesMultipleRequestsPerConnection) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();

  RawConnection connection(server.port());
  for (int i = 0; i < 3; ++i) {
    connection.send("GET /echo HTTP/1.1\r\nHost: x\r\n\r\n");
    const std::string response = connection.read_one_response();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(SvcHttpServer, KeepAliveOffClosesAfterOneRequest) {
  HttpServer::Options options = echo_options();
  options.keep_alive = false;
  HttpServer server(std::move(options));
  ASSERT_TRUE(server.start()) << server.error();

  RawConnection connection(server.port());
  connection.send("GET /echo HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string response = connection.read_until_close();  // peer closes
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST(SvcHttpServer, MalformedRequestLineIs400) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();
  RawConnection connection(server.port());
  connection.send("NOT-A-REQUEST\r\n\r\n");
  EXPECT_NE(connection.read_until_close().find("400 Bad Request"),
            std::string::npos);
}

TEST(SvcHttpServer, OversizedBodyIs413) {
  HttpServer::Options options = echo_options();
  options.max_body_bytes = 16;
  HttpServer server(std::move(options));
  ASSERT_TRUE(server.start()) << server.error();
  const auto response = http_request("127.0.0.1", server.port(), "POST",
                                     "/echo", std::string(64, 'x'));
  EXPECT_EQ(response.status, 413);
}

TEST(SvcHttpServer, OversizedHeadersAre431) {
  HttpServer::Options options = echo_options();
  options.max_header_bytes = 128;
  HttpServer server(std::move(options));
  ASSERT_TRUE(server.start()) << server.error();
  RawConnection connection(server.port());
  connection.send("GET /echo HTTP/1.1\r\nX-Big: " + std::string(256, 'y') +
                  "\r\n\r\n");
  EXPECT_NE(connection.read_until_close().find("431"), std::string::npos);
}

TEST(SvcHttpServer, TornRequestTimesOutAs408) {
  HttpServer::Options options = echo_options();
  options.read_timeout_seconds = 1;
  HttpServer server(std::move(options));
  ASSERT_TRUE(server.start()) << server.error();
  RawConnection connection(server.port());
  connection.send("GET /echo HTTP/1.1\r\nHost:");  // head never finishes
  EXPECT_NE(connection.read_until_close().find("408"), std::string::npos);
}

TEST(SvcHttpServer, ChunkedTransferEncodingIs501) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();
  RawConnection connection(server.port());
  connection.send(
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(connection.read_until_close().find("501"), std::string::npos);
}

TEST(SvcHttpServer, DrainFinishesInflightRequestBeforeReturning) {
  std::atomic<bool> entered{false};
  HttpServer::Options options;
  options.handler = [&entered](const HttpRequest&) {
    entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    HttpResponse response;
    response.body = "slow done";
    return response;
  };
  HttpServer server(std::move(options));
  ASSERT_TRUE(server.start()) << server.error();

  std::string body;
  std::thread client([&server, &body]() {
    body = http_request("127.0.0.1", server.port(), "GET", "/slow").body;
  });
  while (!entered.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(5));

  server.drain();  // must wait for the in-flight response, then return
  client.join();
  EXPECT_EQ(body, "slow done");
  EXPECT_FALSE(server.running());  // draining implies no further accepts
}

TEST(SvcHttpServer, ConcurrentClientsAllServed) {
  HttpServer server(echo_options());
  ASSERT_TRUE(server.start()) << server.error();

  constexpr int kThreads = 8;
  constexpr int kRequests = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &ok]() {
      for (int i = 0; i < kRequests; ++i) {
        const auto response = http_request("127.0.0.1", server.port(), "POST",
                                           "/echo", "ping");
        if (response.status == 200 && response.body == "POST /echo ping") {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kThreads * kRequests));
}

/// One-shot fake server: accepts a single connection, sends `script`
/// verbatim, closes. For exercising the client's validation paths.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::string script) : script_(std::move(script)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this]() {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      char buffer[4096];
      ::recv(fd, buffer, sizeof(buffer), 0);  // drain the request head
      ::send(fd, script_.data(), script_.size(), 0);
      ::close(fd);
    });
  }
  ~ScriptedServer() {
    thread_.join();
    ::close(listen_fd_);
  }
  std::uint16_t port() const { return port_; }

 private:
  std::string script_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(SvcHttpClient, ThrowsOnTruncatedBodyInsteadOfReturningIt) {
  // Content-Length promises 100 bytes; the peer sends 10 and closes.
  ScriptedServer server(
      "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n0123456789");
  try {
    http_request("127.0.0.1", server.port(), "GET", "/");
    FAIL() << "expected a truncation error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(SvcHttpClient, ThrowsOnOversizedResponseInsteadOfTruncating) {
  ScriptedServer server("HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n" +
                        std::string(4096, 'z'));
  HttpClientOptions options;
  options.max_response_bytes = 512;
  try {
    http_request("127.0.0.1", server.port(), "GET", "/", "",
                 "application/json", options);
    FAIL() << "expected an oversize error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos)
        << e.what();
  }
}

TEST(SvcHttpClient, ThrowsOnMalformedStatusLine) {
  ScriptedServer server("BANANAS\r\n\r\n");
  EXPECT_THROW(http_request("127.0.0.1", server.port(), "GET", "/"),
               std::runtime_error);
}

TEST(SvcHttpClient, ConnectFailureThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(http_request("127.0.0.1", 1, "GET", "/"), std::runtime_error);
}

}  // namespace
}  // namespace lcl::svc
