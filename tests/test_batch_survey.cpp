#include "batch/survey.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/cache.hpp"
#include "core/problems.hpp"
#include "lint/canonical.hpp"
#include "lint/spec.hpp"
#include "lint/spec_io.hpp"
#include "re/engine.hpp"

namespace lcl {
namespace {

using batch::Cache;
using batch::Family;
using batch::FamilyMember;
using batch::SurveyOptions;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The options `tools/lcl_batch` runs with by default - also the options
/// the committed golden report was produced under.
SurveyOptions default_options() {
  SurveyOptions options;
  options.engine.max_steps = 3;
  return options;
}

TEST(ExhaustiveFamily, EnumeratesTheDelta2TwoLabelSlice) {
  const auto family = batch::exhaustive_family({});
  // 3 degree-2 node configs and 3 edge configs over 2 labels: (2^3 - 1)^2
  // non-empty subset pairs.
  EXPECT_EQ(family.members.size(), 49u);
  EXPECT_EQ(family.description, "exhaustive:d2:l2");
  // Canonical enumeration order: the first member is node mask 1, edge
  // mask 1; names encode the masks.
  EXPECT_EQ(family.members.front().name, "d2l2-n1-e1");
  EXPECT_EQ(family.members.back().name, "d2l2-n7-e7");
  // Every member builds with unconstrained low degrees: degree-1 nodes
  // (path endpoints) always have all 2 configurations.
  for (const auto& member : family.members) {
    EXPECT_EQ(member.problem.node_configs(1).size(), 2u) << member.name;
  }
}

TEST(ExhaustiveFamily, CapAndValidation) {
  batch::ExhaustiveFamilyOptions options;
  options.max_problems = 5;
  const auto capped = batch::exhaustive_family(options);
  EXPECT_EQ(capped.members.size(), 5u);
  // The capped prefix is the same as the full enumeration's prefix.
  const auto full = batch::exhaustive_family({});
  for (std::size_t i = 0; i < capped.members.size(); ++i) {
    EXPECT_EQ(capped.members[i].name, full.members[i].name);
  }
  batch::ExhaustiveFamilyOptions bad;
  bad.max_degree = 1;
  EXPECT_THROW(batch::exhaustive_family(bad), std::invalid_argument);
  bad = {};
  bad.labels = 9;  // C(10, 2) = 45 degree-2 configs: subset space too large
  EXPECT_THROW(batch::exhaustive_family(bad), std::invalid_argument);
}

TEST(SpecDirFamily, LoadsSortedAndValidates) {
  const std::string dir = testing::TempDir() + "lcl_batch_specs";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  lint::save_spec(dir + "/b-matching.json",
                  lint::spec_from_problem(problems::maximal_matching(3)));
  lint::save_spec(dir + "/a-coloring.json",
                  lint::spec_from_problem(problems::two_coloring(2)));
  const auto family = batch::spec_dir_family(dir);
  ASSERT_EQ(family.members.size(), 2u);
  EXPECT_EQ(family.members[0].name, "a-coloring");
  EXPECT_EQ(family.members[1].name, "b-matching");

  EXPECT_THROW(batch::spec_dir_family(dir + "/nope"), std::runtime_error);
}

TEST(Survey, AgreesWithTheUncachedSpeedupEngine) {
  Family family;
  family.description = "engine-parity";
  family.members.push_back(FamilyMember{"trivial", problems::trivial(2)});
  family.members.push_back(FamilyMember{"mm3", problems::maximal_matching(3)});
  family.members.push_back(FamilyMember{"2col", problems::two_coloring(2)});

  const auto options = default_options();
  const auto report = batch::run_survey(family, options);
  ASSERT_EQ(report.outcomes.size(), 3u);
  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.error.empty()) << outcome.name << ": " << outcome.error;
    const NodeEdgeCheckableLcl* problem = nullptr;
    for (const auto& member : family.members) {
      if (member.name == outcome.name) problem = &member.problem;
    }
    ASSERT_NE(problem, nullptr) << outcome.name;
    SpeedupEngine engine(*problem);
    const auto expected = engine.run(options.engine);
    EXPECT_EQ(outcome.zero_round_step, expected.zero_round_step)
        << outcome.name;
    EXPECT_EQ(outcome.fixed_point, expected.fixed_point) << outcome.name;
    EXPECT_EQ(outcome.budget_exhausted, expected.budget_exhausted)
        << outcome.name;
    EXPECT_EQ(outcome.detected_unsolvable, expected.detected_unsolvable)
        << outcome.name;
  }
}

TEST(Survey, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto family = batch::exhaustive_family({});
  auto options = default_options();

  options.jobs = 1;
  const std::string sequential = batch::run_survey(family, options).to_json();
  options.jobs = 4;
  const std::string four = batch::run_survey(family, options).to_json();
  options.jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::string all_cores = batch::run_survey(family, options).to_json();

  EXPECT_EQ(sequential, four);
  EXPECT_EQ(sequential, all_cores);
}

TEST(Survey, WarmCacheReproducesTheColdReportByteForByte) {
  const std::string path = testing::TempDir() + "lcl_batch_survey_warm.jsonl";
  std::remove(path.c_str());
  const auto family = batch::exhaustive_family({});
  auto options = default_options();
  options.jobs = 4;

  std::string cold;
  {
    Cache::Options cache_options;
    cache_options.disk_path = path;
    cache_options.load_existing = false;
    Cache cache(std::move(cache_options));
    options.cache = &cache;
    cold = batch::run_survey(family, options).to_json();
    EXPECT_GT(cache.stats().insertions, 0u);
  }
  {
    // A fresh process resuming from the disk tier: every verdict-level
    // computation must be served from the cache.
    Cache::Options cache_options;
    cache_options.disk_path = path;
    cache_options.load_existing = true;
    Cache cache(std::move(cache_options));
    EXPECT_GT(cache.stats().disk_loaded, 0u);
    options.cache = &cache;
    const std::string warm = batch::run_survey(family, options).to_json();
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_GT(cache.stats().hits, 0u);
  }
  // And equal to the uncached report: the cache changes cost, never content.
  options.cache = nullptr;
  EXPECT_EQ(cold, batch::run_survey(family, options).to_json());
}

TEST(Survey, ResumeAfterPartialRunReusesTheDiskTier) {
  const std::string path = testing::TempDir() + "lcl_batch_survey_resume.jsonl";
  std::remove(path.c_str());
  auto family = batch::exhaustive_family({});
  auto options = default_options();

  // "Killed" survey: only the first 10 members completed before the
  // process died (simulated by surveying a prefix).
  Family prefix;
  prefix.description = family.description;
  prefix.members.assign(family.members.begin(), family.members.begin() + 10);
  {
    Cache::Options cache_options;
    cache_options.disk_path = path;
    cache_options.load_existing = false;
    Cache cache(std::move(cache_options));
    options.cache = &cache;
    (void)batch::run_survey(prefix, options);
  }
  // The rerun over the full family resumes from the disk tier: the prefix's
  // work is all hits.
  Cache::Options cache_options;
  cache_options.disk_path = path;
  cache_options.load_existing = true;
  Cache cache(std::move(cache_options));
  options.cache = &cache;
  const auto resumed = batch::run_survey(family, options);
  EXPECT_EQ(resumed.problems, family.members.size());
  EXPECT_GT(cache.stats().hits, 0u);

  options.cache = nullptr;
  EXPECT_EQ(resumed.to_json(), batch::run_survey(family, options).to_json());
}

TEST(Survey, StepBudgetBlowUpFailsOnlyThatRow) {
  Family family;
  family.description = "budget-isolation";
  // On a 13-node all-0 path the brute-force reference settles trivial(2)
  // in 24 steps, while perfect matching (unsolvable on an odd path) needs
  // 47 to exhaust the search - a budget of 30 lets one finish and blows
  // the other up.
  family.members.push_back(FamilyMember{"cheap", problems::trivial(2)});
  family.members.push_back(
      FamilyMember{"pricey", problems::perfect_matching(2)});

  auto options = default_options();
  options.jobs = 2;
  options.check_nodes = 13;
  options.check_budget = 30;
  const auto report = batch::run_survey(family, options);
  ASSERT_EQ(report.outcomes.size(), 2u);

  const auto* cheap = &report.outcomes[0];
  const auto* pricey = &report.outcomes[1];
  if (cheap->name != "cheap") std::swap(cheap, pricey);
  ASSERT_EQ(cheap->name, "cheap");
  ASSERT_EQ(pricey->name, "pricey");

  // The blown-up member is an error row carrying its budget...
  EXPECT_FALSE(pricey->error.empty());
  EXPECT_EQ(pricey->error_budget, 30u);
  EXPECT_EQ(pricey->landscape_class, "error");
  // ...and the other member's row is untouched by its neighbor's failure.
  EXPECT_TRUE(cheap->error.empty()) << cheap->error;
  EXPECT_EQ(cheap->check, "solvable");
  EXPECT_EQ(report.errors, 1u);
}

// ---------------------------------------------------------------------------
// The canonical key tier (`lcl_batch --cache-key=canonical`).

/// A permuted copy of `problem`: identical constraints up to the output
/// relabeling `sigma` (old -> new).
NodeEdgeCheckableLcl permuted_copy(const NodeEdgeCheckableLcl& problem,
                                   const std::vector<Label>& sigma) {
  return lint::build_spec(
      lint::permute_spec(lint::spec_from_problem(problem), sigma));
}

TEST(Survey, PermutationEquivalentMembersResolveAsCanonicalHits) {
  // Three permutation-equivalent members: with the canonical tier on, the
  // engine runs once and the other two members are confirmed
  // canonical-key hits replayed through the permutation evidence.
  const auto base = problems::maximal_matching(2);
  Family family;
  family.description = "canonical-dedup";
  family.members.push_back(FamilyMember{"mm-a", base});
  family.members.push_back(FamilyMember{"mm-b", permuted_copy(base, {2, 0, 1})});
  family.members.push_back(FamilyMember{"mm-c", permuted_copy(base, {1, 2, 0})});
  auto options = default_options();

  // Baseline: surveying just the first member fills the cache with
  // everything one equivalence class costs.
  std::uint64_t solo_insertions = 0;
  {
    Family solo;
    solo.description = family.description;
    solo.members.push_back(family.members.front());
    Cache::Options cache_options;
    cache_options.canonical_tier = true;
    Cache cache(std::move(cache_options));
    options.cache = &cache;
    (void)batch::run_survey(solo, options);
    solo_insertions = cache.stats().insertions;
    ASSERT_GT(solo_insertions, 0u);
  }

  Cache::Options cache_options;
  cache_options.canonical_tier = true;
  Cache cache(std::move(cache_options));
  options.cache = &cache;
  const auto report = batch::run_survey(family, options);

  // One equivalence class; the permuted members added NO new cache
  // entries - every verdict-level computation ran exactly once.
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.canonical_classes, 1u);
  EXPECT_EQ(cache.stats().insertions, solo_insertions);
  // N-1 = 2 members served through the canonical tier (at least their
  // engine verdicts; the classifier verdicts ride the same tier).
  EXPECT_GE(cache.stats().canonical_hits, 2u);

  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.error.empty()) << outcome.name;
    EXPECT_EQ(outcome.canonical_key, report.outcomes.front().canonical_key);
    EXPECT_EQ(outcome.zero_round_step,
              report.outcomes.front().zero_round_step);
    EXPECT_EQ(outcome.landscape_class,
              report.outcomes.front().landscape_class);
  }

  // Replayed verdicts are exactly the computed ones: the cached report is
  // byte-identical to an uncached run.
  options.cache = nullptr;
  EXPECT_EQ(report.to_json(), batch::run_survey(family, options).to_json());
}

TEST(Survey, CanonicalReportIsDeterministicAcrossJobsAndCacheStates) {
  const std::string path =
      testing::TempDir() + "lcl_batch_survey_canon.jsonl";
  std::remove(path.c_str());
  const auto family = batch::exhaustive_family({});
  auto options = default_options();

  // Reference: no cache, sequential.
  options.jobs = 1;
  const auto reference = batch::run_survey(family, options);
  const std::string raw = reference.to_json();
  // The Delta=2 l=2 family collapses into its label-permutation classes;
  // pinning the count fences the canonical_key column.
  EXPECT_EQ(reference.problems, 49u);
  EXPECT_EQ(reference.canonical_classes, 29u);

  // Cold canonical-tier cache, parallel.
  options.jobs = 4;
  {
    Cache::Options cache_options;
    cache_options.disk_path = path;
    cache_options.load_existing = false;
    cache_options.canonical_tier = true;
    Cache cache(std::move(cache_options));
    options.cache = &cache;
    EXPECT_EQ(batch::run_survey(family, options).to_json(), raw);
    EXPECT_GT(cache.stats().canonical_hits, 0u);
  }
  // Warm canonical-tier cache resumed from disk.
  {
    Cache::Options cache_options;
    cache_options.disk_path = path;
    cache_options.load_existing = true;
    cache_options.canonical_tier = true;
    Cache cache(std::move(cache_options));
    EXPECT_GT(cache.stats().disk_loaded, 0u);
    options.cache = &cache;
    EXPECT_EQ(batch::run_survey(family, options).to_json(), raw);
  }
}

#ifdef LCL_BATCH_GOLDEN_DIR
TEST(Survey, MatchesTheCommittedGoldenReport) {
  const std::string golden_path =
      std::string(LCL_BATCH_GOLDEN_DIR) + "/survey-d2-l2.json";
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path;
  auto options = default_options();
  options.jobs = 4;
  const auto report =
      batch::run_survey(batch::exhaustive_family({}), options);
  EXPECT_EQ(report.to_json() + "\n", golden)
      << "the Delta=2 landscape drifted; if intentional, regenerate with\n"
         "  lcl_batch --family=exhaustive --delta=2 --labels=2 "
         "--report-telemetry=off "
         "--report-json=tests/golden/survey-d2-l2.json";
}
#endif

}  // namespace
}  // namespace lcl
