#include "volume/model.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "local/cole_vishkin.hpp"
#include "local/sync_engine.hpp"
#include "util/math.hpp"
#include "volume/algorithms.hpp"
#include "volume/order_invariance.hpp"

namespace lcl {
namespace {

std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

TEST(VolumeQuery, TupleAccessAndProbes) {
  Graph g = make_path(5);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  VolumeQuery q(g, 2, input, ids, /*budget=*/3, /*advertised_n=*/5);

  EXPECT_EQ(q.known_count(), 1u);
  EXPECT_EQ(q.id(0), 3u);
  EXPECT_EQ(q.degree(0), 2);
  EXPECT_EQ(q.input(0, 0), 0u);
  EXPECT_THROW(q.id(1), std::out_of_range);

  const std::size_t nb = q.probe(0, 0);
  EXPECT_EQ(nb, 1u);
  EXPECT_EQ(q.id(nb), 2u);  // node 1 has id 2
  EXPECT_EQ(q.probes_used(), 1u);

  // Re-probing yields a fresh index with the same id.
  const std::size_t again = q.probe(0, 0);
  EXPECT_EQ(q.id(again), 2u);
  EXPECT_EQ(q.probes_used(), 2u);

  q.probe(0, 1);
  EXPECT_THROW(q.probe(0, 0), ProbeBudgetExceeded);
}

TEST(VolumeQuery, FarProbesGatedByMode) {
  Graph g = make_path(4);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  VolumeQuery plain(g, 0, input, ids, 5, 4, /*allow_far_probes=*/false);
  EXPECT_THROW(plain.far_probe(3), std::logic_error);

  VolumeQuery lca(g, 0, input, ids, 5, 4, /*allow_far_probes=*/true);
  const auto j = lca.far_probe(3);
  EXPECT_EQ(lca.id(j), 3u);
  EXPECT_EQ(lca.probes_used(), 1u);
  EXPECT_THROW(lca.far_probe(99), std::out_of_range);
}

TEST(VolumeConstant, ZeroProbes) {
  Graph g = make_cycle(8);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  const auto result = run_volume_algorithm(VolumeConstant{}, g, input, ids);
  EXPECT_EQ(result.max_probes, 0u);
  EXPECT_TRUE(is_correct_solution(problems::trivial(2), g, input,
                                  result.output));
}

TEST(VolumeOrientByIds, CorrectConstantProbesOrderInvariant) {
  SplitRng rng(31);
  Graph g = make_random_tree(60, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const VolumeOrientByIds algo;
  const auto result = run_volume_algorithm(algo, g, input, ids);
  EXPECT_TRUE(is_correct_solution(problems::any_orientation(3), g, input,
                                  result.output));
  EXPECT_LE(result.max_probes, 3u);
  EXPECT_TRUE(check_volume_order_invariance(algo, g, input, ids, 5, rng));
}

class VolumeCvTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VolumeCvTest, MatchesLocalColeVishkinOnCycles) {
  const std::size_t n = GetParam();
  Graph g = make_cycle(n);
  SplitRng rng(n * 3 + 1);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = chain_orientation_input(g, true);
  const std::uint64_t range = id_range_for(ids);

  const VolumeColeVishkin volume_algo(range);
  const auto volume_result =
      run_volume_algorithm(volume_algo, g, input, ids);

  // The volume implementation simulates the LOCAL one, so the outputs must
  // agree exactly.
  const ColeVishkin local_algo(range);
  const auto local_result = run_synchronous(local_algo, g, input, ids, 1);
  EXPECT_EQ(volume_result.output, local_result.output);

  const auto dummy = uniform_labeling(g, 0);
  EXPECT_TRUE(is_correct_solution(problems::coloring(3, 2), g, dummy,
                                  volume_result.output))
      << "n=" << n;
  // Probe complexity ~ log* of the id range.
  EXPECT_LE(volume_result.max_probes,
            static_cast<std::uint64_t>(volume_algo.shrink_rounds()) + 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VolumeCvTest,
                         ::testing::Values(3, 4, 7, 16, 100, 1024));

TEST(VolumeColeVishkin, WorksOnPathsIncludingTiny) {
  for (std::size_t n : {2u, 3u, 5u, 40u, 300u}) {
    Graph g = make_path(n);
    SplitRng rng(n);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = chain_orientation_input(g, false);
    const VolumeColeVishkin algo(id_range_for(ids));
    const auto result = run_volume_algorithm(algo, g, input, ids);
    const auto dummy = uniform_labeling(g, 0);
    EXPECT_TRUE(is_correct_solution(problems::coloring(3, 2), g, dummy,
                                    result.output))
        << "n=" << n;
  }
}

TEST(VolumeColeVishkin, NotOrderInvariant) {
  Graph g = make_cycle(64);
  SplitRng rng(5);
  const auto ids = random_distinct_ids(g, 2, rng);
  const auto input = chain_orientation_input(g, true);
  // Huge id range so that order-preserving remaps (which draw fresh, larger
  // identifier values) stay inside it.
  const VolumeColeVishkin algo(std::uint64_t{1} << 62);
  // Order-preserving remaps change identifier *bits*, which Cole-Vishkin
  // reads; with a large id range some remap must change the output.
  EXPECT_FALSE(check_volume_order_invariance(algo, g, input, ids, 25, rng));
}

TEST(VolumeTwoColoring, ProperAndLinearProbes) {
  for (std::size_t n : {2u, 9u, 50u, 200u}) {
    Graph g = make_path(n);
    SplitRng rng(n + 7);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = chain_orientation_input(g, false);
    const VolumeTwoColoring algo;
    const auto result = run_volume_algorithm(algo, g, input, ids);
    const auto dummy = uniform_labeling(g, 0);
    EXPECT_TRUE(is_correct_solution(problems::two_coloring(2), g, dummy,
                                    result.output))
        << "n=" << n;
    EXPECT_EQ(result.max_probes, n - 1);  // the right endpoint walks home
  }
}

TEST(FrozenVolume, CollapsesProbeBudgetAndStaysCorrect) {
  const WastefulVolumeOrient wasteful;
  EXPECT_GT(wasteful.probe_budget(std::size_t{1} << 40),
            wasteful.probe_budget(16));

  const FrozenVolumeAlgorithm frozen(wasteful, /*n0=*/64);
  EXPECT_EQ(frozen.probe_budget(std::size_t{1} << 40),
            frozen.probe_budget(64));

  SplitRng rng(77);
  for (std::size_t n : {16u, 500u, 5000u}) {
    Graph g = make_random_tree(n, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto result = run_volume_algorithm(frozen, g, input, ids);
    EXPECT_TRUE(is_correct_solution(problems::any_orientation(3), g, input,
                                    result.output))
        << "n=" << n;
    // Probes bounded by the frozen (constant) budget.
    EXPECT_LE(result.max_probes, frozen.probe_budget(n));
  }
}

TEST(FrozenVolume, WastefulBudgetGrowsUnfrozen) {
  // Sanity for the ablation: unfrozen, the wasteful algorithm's measured
  // probes grow with n.
  SplitRng rng(78);
  std::uint64_t small_probes = 0, large_probes = 0;
  {
    Graph g = make_random_tree(16, 3, rng);
    const auto ids = random_distinct_ids(g, 3, rng);
    small_probes = run_volume_algorithm(WastefulVolumeOrient{}, g,
                                        uniform_labeling(g, 0), ids)
                       .max_probes;
  }
  {
    Graph g = make_random_tree(40000, 3, rng);
    const auto ids = random_distinct_ids(g, 3, rng);
    large_probes = run_volume_algorithm(WastefulVolumeOrient{}, g,
                                        uniform_labeling(g, 0), ids)
                       .max_probes;
  }
  EXPECT_GT(large_probes, small_probes);
}

TEST(RunVolume, ValidatesArguments) {
  Graph g = make_path(3);
  const auto ids = sequential_ids(g);
  EXPECT_THROW(run_volume_algorithm(VolumeConstant{}, g,
                                    HalfEdgeLabeling(2, 0), ids),
               std::invalid_argument);
  EXPECT_THROW(run_volume_algorithm(VolumeConstant{}, g,
                                    uniform_labeling(g, 0), IdAssignment(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcl
