#include "core/lcl.hpp"

#include <gtest/gtest.h>

#include "core/problems.hpp"

namespace lcl {
namespace {

TEST(Alphabet, BasicLookup) {
  Alphabet a({"A", "B", "C"});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.name(0), "A");
  EXPECT_EQ(a.at("C"), 2u);
  EXPECT_EQ(a.find("Z"), std::nullopt);
  EXPECT_THROW(a.at("Z"), std::out_of_range);
  EXPECT_THROW(a.name(3), std::out_of_range);
  EXPECT_THROW(Alphabet({"A", "A"}), std::invalid_argument);
  EXPECT_EQ(a.add("D"), 3u);
  EXPECT_THROW(a.add("A"), std::invalid_argument);
}

TEST(Configuration, CanonicalOrder) {
  const Configuration c({3, 1, 2});
  EXPECT_EQ(c.labels(), (std::vector<Label>{1, 2, 3}));
  EXPECT_EQ(Configuration({1, 2, 3}), c);
  EXPECT_EQ(Configuration::pair(5, 2), Configuration::pair(2, 5));
  EXPECT_EQ(Configuration({1, 1, 2}).hash(), Configuration({2, 1, 1}).hash());
  EXPECT_NE(Configuration({1, 1}), Configuration({1, 1, 1}));
}

TEST(Configuration, ToString) {
  Alphabet a({"A", "B"});
  EXPECT_EQ(Configuration({1, 0}).to_string(a), "[A B]");
}

TEST(Builder, RejectsBadArguments) {
  Alphabet in({"-"});
  Alphabet out({"x", "y"});
  EXPECT_THROW(NodeEdgeCheckableLcl::Builder("p", in, out, 0),
               std::invalid_argument);
  EXPECT_THROW(NodeEdgeCheckableLcl::Builder("p", Alphabet(), out, 2),
               std::invalid_argument);
  EXPECT_THROW(NodeEdgeCheckableLcl::Builder("p", in, Alphabet(), 2),
               std::invalid_argument);

  NodeEdgeCheckableLcl::Builder b("p", in, out, 2);
  EXPECT_THROW(b.allow_node({}), std::invalid_argument);
  EXPECT_THROW(b.allow_node({0, 0, 0}), std::invalid_argument);  // degree > 2
  EXPECT_THROW(b.allow_node({5}), std::out_of_range);
  EXPECT_THROW(b.allow_edge(0, 9), std::out_of_range);
  EXPECT_THROW(b.allow_output_for_input(7, 0), std::out_of_range);
}

TEST(Builder, RequiresConstraintsAndG) {
  Alphabet in({"-"});
  Alphabet out({"x"});
  {
    NodeEdgeCheckableLcl::Builder b("p", in, out, 2);
    b.allow_edge(0, 0).unrestricted_inputs();
    EXPECT_THROW(b.build(), std::logic_error);  // no node config
  }
  {
    NodeEdgeCheckableLcl::Builder b("p", in, out, 2);
    b.allow_node({0}).unrestricted_inputs();
    EXPECT_THROW(b.build(), std::logic_error);  // no edge config
  }
  {
    NodeEdgeCheckableLcl::Builder b("p", in, out, 2);
    b.allow_node({0}).allow_edge(0, 0);
    EXPECT_THROW(b.build(), std::logic_error);  // g empty
  }
}

TEST(Builder, BuildTwiceThrows) {
  NodeEdgeCheckableLcl::Builder b("p", Alphabet({"-"}), Alphabet({"x"}), 2);
  b.allow_node({0}).allow_edge(0, 0).unrestricted_inputs();
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Lcl, MembershipQueries) {
  auto p = problems::coloring(3, 3);
  EXPECT_EQ(p.output_alphabet().size(), 3u);
  // Node: constant multisets only.
  EXPECT_TRUE(p.node_allows(Configuration({0, 0, 0})));
  EXPECT_TRUE(p.node_allows(Configuration({2, 2})));
  EXPECT_FALSE(p.node_allows(Configuration({0, 1})));
  EXPECT_FALSE(p.node_allows(Configuration({0, 0, 0, 0})));  // degree > 3
  // Edge: distinct colors only.
  EXPECT_TRUE(p.edge_allows(0, 1));
  EXPECT_TRUE(p.edge_allows(1, 0));
  EXPECT_FALSE(p.edge_allows(1, 1));
  // Partner sets.
  EXPECT_EQ(p.edge_partners(0), (LabelSet{3, {1, 2}}));
  EXPECT_THROW(p.edge_partners(3), std::out_of_range);
  // g is unrestricted.
  EXPECT_EQ(p.allowed_outputs(0), LabelSet::full(3));
  EXPECT_THROW(p.allowed_outputs(1), std::out_of_range);
}

TEST(Lcl, NodeConfigsByDegree) {
  auto p = problems::coloring(2, 3);
  EXPECT_EQ(p.node_configs(1).size(), 2u);
  EXPECT_EQ(p.node_configs(2).size(), 2u);
  EXPECT_EQ(p.node_configs(3).size(), 2u);
  EXPECT_TRUE(p.node_configs(4).empty());
  EXPECT_TRUE(p.node_configs(-1).empty());
  EXPECT_EQ(p.total_node_configs(), 6u);
}

TEST(Lcl, ToStringMentionsEverything) {
  auto p = problems::sinkless_orientation(3);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("sinkless-orientation"), std::string::npos);
  EXPECT_NE(s.find("Sigma_out"), std::string::npos);
  EXPECT_NE(s.find("edge configurations"), std::string::npos);
}

TEST(Problems, TrivialIsEverywhereAllowed) {
  auto p = problems::trivial(4);
  for (int d = 1; d <= 4; ++d) {
    EXPECT_EQ(p.node_configs(d).size(), 1u);
  }
  EXPECT_TRUE(p.edge_allows(0, 0));
}

TEST(Problems, SinklessOrientationConstraints) {
  auto p = problems::sinkless_orientation(3);
  const Label kOut = p.output_alphabet().at("O");
  const Label kIn = p.output_alphabet().at("I");
  // Degree 3 (= Delta): all-in forbidden, rest allowed.
  EXPECT_FALSE(p.node_allows(Configuration({kIn, kIn, kIn})));
  EXPECT_TRUE(p.node_allows(Configuration({kOut, kIn, kIn})));
  // Degree < Delta: anything.
  EXPECT_TRUE(p.node_allows(Configuration({kIn})));
  EXPECT_TRUE(p.node_allows(Configuration({kIn, kIn})));
  // Edges must be consistently oriented.
  EXPECT_TRUE(p.edge_allows(kOut, kIn));
  EXPECT_FALSE(p.edge_allows(kOut, kOut));
  EXPECT_FALSE(p.edge_allows(kIn, kIn));
}

TEST(Problems, MisConstraints) {
  auto p = problems::mis(3);
  const Label kI = p.output_alphabet().at("I");
  const Label kP = p.output_alphabet().at("P");
  const Label kO = p.output_alphabet().at("O");
  EXPECT_TRUE(p.node_allows(Configuration({kI, kI, kI})));
  EXPECT_TRUE(p.node_allows(Configuration({kP, kO, kO})));
  EXPECT_FALSE(p.node_allows(Configuration({kP, kP, kO})));
  EXPECT_FALSE(p.node_allows(Configuration({kO, kO, kO})));
  EXPECT_FALSE(p.edge_allows(kI, kI));
  EXPECT_TRUE(p.edge_allows(kP, kI));
  EXPECT_FALSE(p.edge_allows(kP, kO));
  EXPECT_FALSE(p.edge_allows(kP, kP));
}

TEST(Problems, MaximalMatchingConstraints) {
  auto p = problems::maximal_matching(3);
  const Label kM = p.output_alphabet().at("M");
  const Label kY = p.output_alphabet().at("Y");
  const Label kU = p.output_alphabet().at("U");
  EXPECT_TRUE(p.node_allows(Configuration({kM, kY, kY})));
  EXPECT_FALSE(p.node_allows(Configuration({kM, kM, kY})));
  EXPECT_TRUE(p.node_allows(Configuration({kU, kU, kU})));
  EXPECT_FALSE(p.edge_allows(kU, kU));  // maximality
  EXPECT_TRUE(p.edge_allows(kM, kM));
  EXPECT_FALSE(p.edge_allows(kM, kY));
}

TEST(Problems, EdgeColoringConstraints) {
  auto p = problems::edge_coloring(3, 3);
  EXPECT_TRUE(p.node_allows(Configuration({0, 1, 2})));
  EXPECT_FALSE(p.node_allows(Configuration({0, 0, 1})));
  EXPECT_TRUE(p.edge_allows(1, 1));
  EXPECT_FALSE(p.edge_allows(0, 1));
  EXPECT_THROW(problems::edge_coloring(2, 3), std::invalid_argument);
}

TEST(Problems, ForbiddenColorUsesG) {
  auto p = problems::forbidden_color(4, 3);
  const Label forbid2 = p.input_alphabet().at("forbid2");
  const Label free = p.input_alphabet().at("free");
  EXPECT_FALSE(p.allowed_outputs(forbid2).contains(2));
  EXPECT_TRUE(p.allowed_outputs(forbid2).contains(1));
  EXPECT_EQ(p.allowed_outputs(free).size(), 4u);
}

TEST(Problems, WeakColoringWitnessEdges) {
  auto p = problems::weak_coloring(2, 3);
  const Label c0 = p.output_alphabet().at("c0");
  const Label c0w = p.output_alphabet().at("c0!");
  const Label c1 = p.output_alphabet().at("c1");
  const Label c1w = p.output_alphabet().at("c1!");
  // Node: same color everywhere, exactly one witness flag.
  EXPECT_TRUE(p.node_allows(Configuration({c0w, c0, c0})));
  EXPECT_FALSE(p.node_allows(Configuration({c0, c0, c0})));
  EXPECT_FALSE(p.node_allows(Configuration({c0w, c0w, c0})));
  // Witness half-edge must see the other color on the other side.
  EXPECT_FALSE(p.edge_allows(c0w, c0));
  EXPECT_TRUE(p.edge_allows(c0w, c1));
  EXPECT_TRUE(p.edge_allows(c0w, c1w));
  EXPECT_TRUE(p.edge_allows(c0, c0));
}

TEST(Problems, PerfectMatchingConstraints) {
  auto p = problems::perfect_matching(3);
  const Label kM = p.output_alphabet().at("M");
  const Label kY = p.output_alphabet().at("Y");
  EXPECT_TRUE(p.node_allows(Configuration({kM, kY, kY})));
  EXPECT_FALSE(p.node_allows(Configuration({kY, kY, kY})));  // must match
  EXPECT_FALSE(p.node_allows(Configuration({kM, kM, kY})));
  EXPECT_TRUE(p.edge_allows(kM, kM));
  EXPECT_FALSE(p.edge_allows(kM, kY));
}

TEST(Problems, ArgumentValidation) {
  EXPECT_THROW(problems::coloring(0, 3), std::invalid_argument);
  EXPECT_THROW(problems::trivial(0), std::invalid_argument);
  EXPECT_THROW(problems::sinkless_orientation(1), std::invalid_argument);
  EXPECT_THROW(problems::weak_coloring(1, 3), std::invalid_argument);
  EXPECT_THROW(problems::forbidden_color(1, 3), std::invalid_argument);
}

TEST(ProblemEquality, SameConstraintsIgnoresNames) {
  const auto a = problems::coloring(3, 2);
  auto b = problems::coloring(3, 2);
  EXPECT_TRUE(same_constraints(a, b));
  EXPECT_TRUE(isomorphic_constraints(a, b));
}

TEST(ProblemEquality, DetectsDifferingConstraints) {
  const auto a = problems::coloring(3, 3);
  const auto b = problems::mis(3);
  EXPECT_FALSE(same_constraints(a, b));
}

TEST(ProblemEquality, IsomorphicUnderLabelRenaming) {
  // 2-coloring with the color indices swapped: not equal index-by-index,
  // but isomorphic via the transposition.
  NodeEdgeCheckableLcl::Builder builder("swapped", Alphabet({"-"}),
                                        Alphabet({"B", "W"}), 2);
  for (Label l = 0; l < 2; ++l) {
    builder.allow_node({l});
    builder.allow_node({l, l});
    builder.allow_output_for_input(0, l);
  }
  builder.allow_edge(0, 1);
  const auto swapped = builder.build();
  const auto canonical = problems::two_coloring(2);
  EXPECT_TRUE(same_constraints(canonical, swapped));  // symmetric problem
  EXPECT_TRUE(isomorphic_constraints(canonical, swapped));
}

/// Two problems the cheap engine signature cannot tell apart (same label
/// count, same number of configurations per degree, same edge count) that
/// are NOT equal up to output renaming - the exact confirmation behind
/// `SpeedupEngine`'s fixed-point check must separate them.
TEST(ProblemEquality, CollidingSignaturesAreNotIsomorphic) {
  NodeEdgeCheckableLcl::Builder a_b("a", Alphabet({"-"}),
                                    Alphabet({"x", "y"}), 2);
  a_b.allow_node({0});
  a_b.allow_node({0, 0});  // repeated label
  a_b.allow_edge(0, 0);
  a_b.allow_output_for_input(0, 0);
  a_b.allow_output_for_input(0, 1);
  const auto a = a_b.build();

  NodeEdgeCheckableLcl::Builder b_b("b", Alphabet({"-"}),
                                    Alphabet({"x", "y"}), 2);
  b_b.allow_node({0});
  b_b.allow_node({0, 1});  // two distinct labels
  b_b.allow_edge(0, 1);
  b_b.allow_output_for_input(0, 0);
  b_b.allow_output_for_input(0, 1);
  const auto b = b_b.build();

  // The signature components agree...
  EXPECT_EQ(a.output_alphabet().size(), b.output_alphabet().size());
  EXPECT_EQ(a.edge_configs().size(), b.edge_configs().size());
  for (int d = 1; d <= 2; ++d) {
    EXPECT_EQ(a.node_configs(d).size(), b.node_configs(d).size());
  }
  // ...yet no output-label permutation maps one onto the other.
  EXPECT_FALSE(same_constraints(a, b));
  EXPECT_FALSE(isomorphic_constraints(a, b));
  EXPECT_FALSE(isomorphic_constraints(b, a));
}

}  // namespace
}  // namespace lcl
