// The pull-telemetry surface: Prometheus text exposition (golden file),
// the /metrics + /healthz + /progress HTTP endpoints, run-scoped progress
// accounting, resource sampling, and the progress/resource trace records.
// The *Threads suites run under the obs-tsan preset (see batch.yml), which
// is where the "scrapes never stall workers" claim is actually checked.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/survey.hpp"
#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace lcl {
namespace {

/// Turns runtime metrics on for one test and restores the previous state,
/// so tests do not leak the switch into each other.
class MetricsOn {
 public:
  MetricsOn() : previous_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(true);
  }
  ~MetricsOn() { obs::set_metrics_enabled(previous_); }

 private:
  bool previous_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The snapshot behind tests/golden/metrics-exposition.prom: one series of
/// every kind, plus the naming/escaping edge cases the exposition grammar
/// cares about. Mirrored by the regen recipe in the golden test below.
obs::MetricsRegistry::Snapshot golden_snapshot() {
  obs::MetricsRegistry::Snapshot snap;
  snap.counters["cache.hits"] = 42;          // dot -> _, _total appended
  snap.counters["re.steps_total"] = 7;       // already _total: no doubling
  snap.counters["9starts with a digit"] = 3; // leading digit prefixed
  snap.gauges["process.rss_kb"] = {51200, 4096, 65536};
  snap.gauges["survey.rows_done"] = {1312, 0, 2000};
  // Values 0, 1, 6, 6, 100: occupies buckets 0, 1, 3, 7 - bucket 2 and
  // 4..6 are empty intermediates the cumulative series must still emit.
  obs::MetricsRegistry::Snapshot::HistogramValue h;
  h.count = 5;
  h.sum = 113;
  h.min = 0;
  h.max = 100;
  h.buckets = {{0, 1}, {1, 1}, {3, 2}, {7, 1}};
  snap.histograms["batch.task_us"] = h;
  snap.histograms["re.empty"] = {};  // count 0: only +Inf/_sum/_count
  return snap;
}

std::vector<obs::prom::Label> golden_labels() {
  // A clean correlation label plus one that needs both key sanitization
  // and value escaping (backslash, quote, newline).
  return {{"run_id", "run-1700000000-42"}, {"weird key!", "a\\b\"c\nd"}};
}

TEST(PromExposition, SanitizesMetricNames) {
  using obs::prom::sanitize_metric_name;
  EXPECT_EQ(sanitize_metric_name("cache.hits"), "cache_hits");
  EXPECT_EQ(sanitize_metric_name("a:b"), "a:b");  // colon legal in names
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name("sp ace/slash"), "sp_ace_slash");
}

TEST(PromExposition, SanitizesLabelKeysAndEscapesValues) {
  using obs::prom::escape_label_value;
  using obs::prom::sanitize_label_key;
  EXPECT_EQ(sanitize_label_key("run_id"), "run_id");
  EXPECT_EQ(sanitize_label_key("a:b"), "a_b");  // no colon in label keys
  EXPECT_EQ(sanitize_label_key("weird key!"), "weird_key_");
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
}

TEST(PromExposition, CumulativeBucketsAreMonotoneWithInfEdge) {
  const std::string text =
      obs::prom::render(golden_snapshot(), /*const_labels=*/{});
  // Empty intermediate buckets appear with the running cumulative count...
  EXPECT_NE(text.find("lclscape_batch_task_us_bucket{le=\"3\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lclscape_batch_task_us_bucket{le=\"63\"} 4\n"),
            std::string::npos)
      << text;
  // ...and +Inf equals _count.
  EXPECT_NE(text.find("lclscape_batch_task_us_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lclscape_batch_task_us_count 5\n"), std::string::npos);
  // The empty histogram renders no numbered buckets, just the edge series.
  EXPECT_EQ(text.find("lclscape_re_empty_bucket{le=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lclscape_re_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

#ifdef LCL_OBS_GOLDEN_DIR
TEST(PromExposition, MatchesTheCommittedGoldenExposition) {
  const std::string golden_path =
      std::string(LCL_OBS_GOLDEN_DIR) + "/metrics-exposition.prom";
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path;
  EXPECT_EQ(obs::prom::render(golden_snapshot(), golden_labels()), golden)
      << "the exposition format drifted; if intentional, regenerate by\n"
         "printing prom::render(golden_snapshot(), golden_labels()) into\n"
         "tests/golden/metrics-exposition.prom";
}
#endif

TEST(RunContext, EtaSemantics) {
  obs::RunContext run("test-eta");
  // No total and no rows: unknown.
  EXPECT_DOUBLE_EQ(run.eta_seconds(), -1.0);
  run.set_rows_total(10);
  EXPECT_DOUBLE_EQ(run.eta_seconds(), -1.0);  // no rows done yet
  run.add_rows_done(5);
  EXPECT_GE(run.eta_seconds(), 0.0);  // mid-run: a real estimate
  run.add_rows_done(5);
  EXPECT_DOUBLE_EQ(run.eta_seconds(), 0.0);  // done
}

TEST(RunContext, ProgressJsonCarriesTheRunState) {
  obs::RunContext run("test-progress", "survey");
  run.set_phase("survey");
  run.set_rows_total(100);
  run.add_rows_done(25);
  run.add_errors(1);
  run.bump("engine_steps", 17);
  run.set_cache_stats_provider([]() {
    return std::pair<std::uint64_t, std::uint64_t>{30, 10};
  });
  run.record_busy_fractions({0.5, 0.75});

  std::string error;
  const auto doc = obs::json::parse(run.progress_json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->find("run_id")->as_string(), "test-progress");
  EXPECT_EQ(doc->find("phase")->as_string(), "survey");
  EXPECT_EQ(doc->find("rows_total")->as_int(), 100);
  EXPECT_EQ(doc->find("rows_done")->as_int(), 25);
  EXPECT_EQ(doc->find("errors")->as_int(), 1);
  ASSERT_NE(doc->find("eta_s"), nullptr);
  ASSERT_NE(doc->find("rows_per_s"), nullptr);
  const auto* cache = doc->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_int(), 30);
  EXPECT_EQ(cache->find("misses")->as_int(), 10);
  EXPECT_DOUBLE_EQ(cache->find("hit_ratio")->as_double(), 0.75);
  const auto* busy = doc->find("worker_busy");
  ASSERT_NE(busy, nullptr);
  ASSERT_EQ(busy->as_array().size(), 2u);
  const auto* units = doc->find("units");
  ASSERT_NE(units, nullptr);
  EXPECT_EQ(units->find("engine_steps")->as_int(), 17);
}

TEST(RunContext, PublishGaugesWritesPrefixedGauges) {
  MetricsOn on;
  obs::RunContext run("test-gauges", "test_run_ctx");
  run.set_rows_total(8);
  run.add_rows_done(3);
  run.publish_gauges();
  run.record_busy_fractions({0.25});
  auto& reg = obs::registry();
  ASSERT_NE(reg.find_gauge("test_run_ctx.rows_total"), nullptr);
  EXPECT_EQ(reg.find_gauge("test_run_ctx.rows_total")->value(), 8);
  EXPECT_EQ(reg.find_gauge("test_run_ctx.rows_done")->value(), 3);
  ASSERT_NE(reg.find_gauge("test_run_ctx.worker0.busy_ppm"), nullptr);
  EXPECT_EQ(reg.find_gauge("test_run_ctx.worker0.busy_ppm")->value(),
            250000);
}

TEST(RunContext, CurrentInstallAndClear) {
  obs::RunContext run("test-current");
  obs::RunContext* previous = obs::RunContext::set_current(&run);
  EXPECT_EQ(obs::RunContext::current(), &run);
  obs::RunContext::set_current(previous);
  EXPECT_NE(obs::RunContext::current(), &run);
}

TEST(Exporter, ServesMetricsHealthzAndProgress) {
  if (!obs::telemetry_compiled_in()) {
    GTEST_SKIP() << "built with LCL_OBS=0";
  }
  MetricsOn on;
  obs::registry().counter("test.exporter.hits").add(11);

  obs::RunContext run("test-run-1");
  run.set_rows_total(4);
  run.add_rows_done(2);

  obs::Exporter::Options options;
  options.const_labels = {{"run_id", "test-run-1"}};
  options.progress_provider = [&run]() { return run.progress_json(); };
  obs::Exporter exporter(std::move(options));
  ASSERT_TRUE(exporter.start()) << exporter.error();
  ASSERT_TRUE(exporter.running());
  ASSERT_NE(exporter.port(), 0);

  std::string status;
  const std::string metrics =
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", &status);
  EXPECT_NE(status.find("200"), std::string::npos) << status;
  EXPECT_NE(
      metrics.find("lclscape_test_exporter_hits_total{run_id=\"test-run-1\"}"),
      std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  EXPECT_EQ(obs::http_get("127.0.0.1", exporter.port(), "/healthz"), "ok\n");

  const std::string progress =
      obs::http_get("127.0.0.1", exporter.port(), "/progress");
  std::string error;
  const auto doc = obs::json::parse(progress, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->find("run_id")->as_string(), "test-run-1");
  EXPECT_EQ(doc->find("rows_done")->as_int(), 2);

  obs::http_get("127.0.0.1", exporter.port(), "/nope", &status);
  EXPECT_NE(status.find("404"), std::string::npos) << status;

  EXPECT_GE(exporter.scrapes(), 4u);
  exporter.stop();
  EXPECT_FALSE(exporter.running());
}

TEST(Exporter, ProgressRouteIs404WithoutAProvider) {
  if (!obs::telemetry_compiled_in()) {
    GTEST_SKIP() << "built with LCL_OBS=0";
  }
  obs::Exporter exporter;
  ASSERT_TRUE(exporter.start()) << exporter.error();
  std::string status;
  obs::http_get("127.0.0.1", exporter.port(), "/progress", &status);
  EXPECT_NE(status.find("404"), std::string::npos) << status;
}

TEST(ExporterThreads, ScrapesRaceInstrumentWritersCleanly) {
  if (!obs::telemetry_compiled_in()) {
    GTEST_SKIP() << "built with LCL_OBS=0";
  }
  MetricsOn on;
  obs::Exporter exporter;
  ASSERT_TRUE(exporter.start()) << exporter.error();
  const std::uint16_t port = exporter.port();

  constexpr int kWriters = 4;
  constexpr int kOps = 4000;
  constexpr int kScrapers = 2;
  constexpr int kScrapesEach = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([t]() {
      auto& reg = obs::registry();
      auto& counter = reg.counter("test.scrape_race.counter");
      auto& gauge = reg.gauge("test.scrape_race.gauge");
      auto& histogram = reg.histogram("test.scrape_race.histogram");
      for (int i = 0; i < kOps; ++i) {
        counter.add(1);
        gauge.set(t * kOps + i);
        histogram.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  std::atomic<int> ok{0};
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([port, &ok]() {
      for (int i = 0; i < kScrapesEach; ++i) {
        const std::string body = obs::http_get("127.0.0.1", port, "/metrics");
        if (body.find("lclscape_test_scrape_race_counter_total") !=
            std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every scrape after the first writer touched the instruments should see
  // them; requiring "most" keeps the test robust to startup interleaving.
  EXPECT_GE(ok.load(), kScrapers * kScrapesEach - kScrapers);
  EXPECT_GE(exporter.scrapes(),
            static_cast<std::uint64_t>(kScrapers) * kScrapesEach);
  EXPECT_EQ(obs::registry().counter("test.scrape_race.counter").value(),
            static_cast<std::uint64_t>(kWriters) * kOps);
}

/// The acceptance bar from the exporter design: a scraper hammering
/// /metrics at ~100 Hz must not stall survey workers, because scrapes only
/// read relaxed atomics and never hold a lock an instrument update needs.
/// The bound is deliberately loose (3x + 2s) - this is a "no pathological
/// serialization" canary, not a benchmark.
TEST(ExporterThreads, HundredHertzScraperDoesNotStallTheSurvey) {
  if (!obs::telemetry_compiled_in()) {
    GTEST_SKIP() << "built with LCL_OBS=0";
  }
  MetricsOn on;
  batch::SurveyOptions options;
  options.jobs = 4;
  options.engine.max_steps = 3;
  const auto family = batch::exhaustive_family({});

  const auto timed_survey = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) {
      const auto report = batch::run_survey(family, options);
      EXPECT_EQ(report.outcomes.size(), family.members.size());
    }
    return std::chrono::steady_clock::now() - start;
  };

  const auto plain = timed_survey();

  obs::Exporter exporter;
  ASSERT_TRUE(exporter.start()) << exporter.error();
  std::atomic<bool> done{false};
  std::thread scraper([&exporter, &done]() {
    while (!done.load(std::memory_order_acquire)) {
      obs::http_get("127.0.0.1", exporter.port(), "/metrics");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  const auto scraped = timed_survey();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(exporter.scrapes(), 0u);
  EXPECT_LE(scraped, plain * 3 + std::chrono::seconds(2))
      << "plain=" << std::chrono::duration<double>(plain).count() << "s"
      << " scraped=" << std::chrono::duration<double>(scraped).count() << "s";
}

TEST(ResourceSampler, ReadResourceUsageReportsPlausibleNumbers) {
  obs::ResourceUsage usage;
  ASSERT_TRUE(obs::read_resource_usage(&usage));
  EXPECT_GT(usage.rss_kb, 0u);
  EXPECT_GE(usage.peak_rss_kb, usage.rss_kb);
}

TEST(ResourceSampler, SamplesGaugesAndHistogram) {
  if (!obs::telemetry_compiled_in()) {
    GTEST_SKIP() << "built with LCL_OBS=0";
  }
  MetricsOn on;
  obs::RunContext run("test-sampler");
  run.set_rows_total(2);
  run.add_rows_done(1);

  obs::ResourceSampler::Options options;
  options.resource_interval = std::chrono::milliseconds(10);
  options.progress_interval = std::chrono::milliseconds(20);
  options.run = &run;
  options.queue_depth = []() { return std::int64_t{5}; };
  obs::ResourceSampler sampler(std::move(options));
  ASSERT_TRUE(sampler.start()) << sampler.error();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples(), 1u);

  auto& reg = obs::registry();
  ASSERT_NE(reg.find_gauge("process.rss_kb"), nullptr);
  EXPECT_GT(reg.find_gauge("process.rss_kb")->value(), 0);
  ASSERT_NE(reg.find_gauge("process.queue_depth"), nullptr);
  EXPECT_EQ(reg.find_gauge("process.queue_depth")->value(), 5);
  ASSERT_NE(reg.find_histogram("process.rss_sample_kb"), nullptr);
  EXPECT_GE(reg.find_histogram("process.rss_sample_kb")->count(), 1u);
  // stop() published the run's gauges one last time.
  ASSERT_NE(reg.find_gauge("survey.rows_done"), nullptr);
}

TEST(ProgressTrace, ProgressAndResourceRecordsRoundTrip) {
  const std::string path = testing::TempDir() + "lcl_obs_progress.jsonl";
  {
    obs::TraceSession session(path, obs::TraceFormat::kJsonl);
    const obs::TraceArg p1[] = {{"rows_done", 10}, {"rows_total", 40}};
    session.emit_progress("test-run-2", "survey", p1, 2);
    const obs::TraceArg r1[] = {{"rss_kb", 2048}, {"peak_rss_kb", 4096},
                                {"cpu_ms", 120}};
    session.emit_resource(r1, 3);
    const obs::TraceArg p2[] = {{"rows_done", 40}, {"rows_total", 40}};
    session.emit_progress("test-run-2", "survey", p2, 2);
    const obs::TraceArg p3[] = {{"rows_done", 40}, {"rows_total", 40}};
    session.emit_progress("test-run-2", "report", p3, 2);
    session.close();
  }

  obs::ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(obs::parse_trace(read_file(path), &trace, &error)) << error;

  const auto summary = obs::summarize(trace);
  EXPECT_EQ(summary.progress_records, 3u);
  EXPECT_EQ(summary.resource_records, 1u);
  EXPECT_NE(obs::format_summary(summary).find("telemetry records"),
            std::string::npos);

  const auto progress = obs::summarize_progress(trace);
  EXPECT_EQ(progress.run_id, "test-run-2");
  EXPECT_EQ(progress.progress_records, 3u);
  EXPECT_EQ(progress.resource_records, 1u);
  ASSERT_EQ(progress.phases.size(), 2u);
  EXPECT_EQ(progress.phases[0].phase, "survey");
  EXPECT_EQ(progress.phases[0].samples, 2u);
  EXPECT_EQ(progress.phases[0].rows_done, 40);
  EXPECT_EQ(progress.phases[1].phase, "report");
  EXPECT_EQ(progress.rows_done, 40);
  EXPECT_EQ(progress.rows_total, 40);
  EXPECT_EQ(progress.peak_rss_kb, 4096u);

  const std::string table = obs::format_progress(progress);
  EXPECT_NE(table.find("test-run-2"), std::string::npos);
  EXPECT_NE(table.find("survey"), std::string::npos);
  EXPECT_NE(table.find("report"), std::string::npos);
}

TEST(ProgressTrace, ChromeFormatRendersTelemetryAsInstants) {
  const std::string path = testing::TempDir() + "lcl_obs_progress.json";
  {
    obs::TraceSession session(path, obs::TraceFormat::kChromeJson);
    const obs::TraceArg p[] = {{"rows_done", 1}};
    session.emit_progress("test-run-3", "survey", p, 1);
    const obs::TraceArg r[] = {{"rss_kb", 1024}};
    session.emit_resource(r, 1);
    session.close();
  }
  const std::string text = read_file(path);
  std::string error;
  ASSERT_NE(obs::json::parse(text, &error), nullptr) << error;
  EXPECT_NE(text.find("progress/survey"), std::string::npos);
  EXPECT_NE(text.find("\"resource\""), std::string::npos);
}

TEST(ProgressTrace, SummarizeProgressOnAnEmptyTraceIsBenign) {
  obs::ParsedTrace trace;
  const auto progress = obs::summarize_progress(trace);
  EXPECT_EQ(progress.progress_records, 0u);
  EXPECT_EQ(progress.phases.size(), 0u);
  EXPECT_NE(obs::format_progress(progress).find("no progress"),
            std::string::npos);
}

}  // namespace
}  // namespace lcl
