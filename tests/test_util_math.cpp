#include "util/math.hpp"

#include <gtest/gtest.h>

#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace lcl {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 5);
  EXPECT_EQ(log_star(1e18), 5);
}

TEST(Tower, InverseOfLogStar) {
  EXPECT_EQ(tower(0), 1u);
  EXPECT_EQ(tower(1), 2u);
  EXPECT_EQ(tower(2), 4u);
  EXPECT_EQ(tower(3), 16u);
  EXPECT_EQ(tower(4), 65536u);
  for (int h = 1; h <= 4; ++h) {
    EXPECT_EQ(log_star(static_cast<double>(tower(h))), h);
  }
  EXPECT_THROW(tower(6), std::overflow_error);
  EXPECT_THROW(tower(-1), std::invalid_argument);
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd_u64(0, 5), 5u);
  EXPECT_EQ(gcd_u64(5, 0), 5u);
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(gcd_u64(7, 13), 1u);
}

TEST(NextPrime, Basics) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(97), 97u);
  EXPECT_EQ(next_prime(98), 101u);
}

TEST(SplitRng, DeterministicAndForkIndependent) {
  SplitRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  SplitRng root(7);
  SplitRng c1 = root.fork(1);
  SplitRng c2 = root.fork(2);
  // Streams from different forks should differ quickly.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (c1.next_u64() != c2.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitRng, NextBelowInRangeAndRoughlyUniform) {
  SplitRng rng(123);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 50);  // within 20% of expectation
  }
}

TEST(SplitRng, NextDoubleInUnitInterval) {
  SplitRng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(EnumerateMultisets, SmallCases) {
  EXPECT_EQ(enumerate_multisets(3, 0).size(), 1u);  // the empty multiset
  EXPECT_EQ(enumerate_multisets(0, 2).size(), 0u);
  const auto pairs = enumerate_multisets(3, 2);
  // C(4,2) = 6 multisets: 00 01 02 11 12 22
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::vector<std::uint32_t>{0, 0}));
  EXPECT_EQ(pairs[5], (std::vector<std::uint32_t>{2, 2}));
  for (const auto& m : pairs) {
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  }
}

TEST(EnumerateMultisets, MatchesCount) {
  for (std::size_t u = 1; u <= 5; ++u) {
    for (std::size_t k = 0; k <= 4; ++k) {
      EXPECT_EQ(enumerate_multisets(u, k).size(), count_multisets(u, k))
          << "u=" << u << " k=" << k;
    }
  }
}

TEST(CountMultisets, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(count_multisets(1u << 20, 8),
            count_multisets(1u << 20, 8));  // deterministic
  EXPECT_EQ(count_multisets(std::size_t{1} << 40, 40),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ForEachSelection, VisitsFullProduct) {
  std::vector<LabelSet> sets{LabelSet(4, {0, 1}), LabelSet(4, {2}),
                             LabelSet(4, {0, 3})};
  int visits = 0;
  const bool early = for_each_selection(
      sets, [&](const std::vector<std::uint32_t>& sel) {
        EXPECT_EQ(sel.size(), 3u);
        EXPECT_TRUE(sel[0] == 0 || sel[0] == 1);
        EXPECT_EQ(sel[1], 2u);
        EXPECT_TRUE(sel[2] == 0 || sel[2] == 3);
        ++visits;
        return false;
      });
  EXPECT_FALSE(early);
  EXPECT_EQ(visits, 4);
}

TEST(ForEachSelection, EarlyExit) {
  std::vector<LabelSet> sets{LabelSet(4, {0, 1}), LabelSet(4, {0, 1})};
  int visits = 0;
  const bool early = for_each_selection(
      sets, [&](const std::vector<std::uint32_t>&) {
        ++visits;
        return visits == 2;
      });
  EXPECT_TRUE(early);
  EXPECT_EQ(visits, 2);
}

TEST(ForEachSelection, EmptyFactorMeansEmptyProduct) {
  std::vector<LabelSet> sets{LabelSet(4, {0, 1}), LabelSet(4)};
  int visits = 0;
  EXPECT_FALSE(for_each_selection(
      sets, [&](const std::vector<std::uint32_t>&) {
        ++visits;
        return true;
      }));
  EXPECT_EQ(visits, 0);
}

TEST(ForEachSelection, EmptyListHasOneEmptyTuple) {
  int visits = 0;
  for_each_selection({}, [&](const std::vector<std::uint32_t>& sel) {
    EXPECT_TRUE(sel.empty());
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

}  // namespace
}  // namespace lcl
