#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "util/label_mask.hpp"
#include "util/label_set.hpp"

namespace lcl {
namespace {

// The multi-word tiers must agree with LabelSet operation-for-operation on
// every shared universe - in particular across the 64-bit word seams, which
// the historical single-word mask never exercised. Everything here is
// deterministic (fixed seeds) so failures reproduce.

LabelSet random_set(std::mt19937_64& rng, std::size_t universe,
                    double density) {
  LabelSet set(universe);
  std::bernoulli_distribution flip(density);
  for (std::uint32_t l = 0; l < universe; ++l) {
    if (flip(rng)) set.insert(l);
  }
  return set;
}

/// Universes worth probing for a W-word tier: tiny ones, every word seam
/// (63/64/65, 127/128/129, ..), and the tier's cap.
std::vector<std::size_t> seam_universes(std::size_t max_universe) {
  std::vector<std::size_t> out = {1, 2, 40};
  for (std::size_t seam = 64; seam < max_universe; seam += 64) {
    out.push_back(seam - 1);
    out.push_back(seam);
    out.push_back(seam + 1);
  }
  out.push_back(max_universe);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](std::size_t u) { return u > max_universe; }),
            out.end());
  return out;
}

template <std::size_t W>
void expect_matches_label_set() {
  std::mt19937_64 rng(0xB17'5E7 + W);
  for (const std::size_t universe : seam_universes(LabelMaskW<W>::kMaxUniverse)) {
    for (const double density : {0.05, 0.5, 0.95}) {
      for (int round = 0; round < 8; ++round) {
        const LabelSet a_set = random_set(rng, universe, density);
        const LabelSet b_set = random_set(rng, universe, density);
        const auto a = LabelMaskW<W>::from_label_set(a_set);
        const auto b = LabelMaskW<W>::from_label_set(b_set);
        SCOPED_TRACE("W=" + std::to_string(W) +
                     " universe=" + std::to_string(universe) +
                     " a=" + a_set.to_string() + " b=" + b_set.to_string());

        // Round trip, membership, cardinality, extremes.
        EXPECT_EQ(a.to_label_set(), a_set);
        EXPECT_EQ(a.size(), a_set.size());
        EXPECT_EQ(a.empty(), a_set.empty());
        EXPECT_EQ(a.to_vector(), a_set.to_vector());
        for (std::uint32_t l = 0; l < universe; ++l) {
          EXPECT_EQ(a.contains(l), a_set.contains(l));
        }
        if (!a_set.empty()) {
          EXPECT_EQ(a.min(), a_set.min());
        }

        // Hash bit-identity and order agreement: masks and sets must be
        // interchangeable as hashed or ordered keys.
        EXPECT_EQ(a.hash(), a_set.hash());
        EXPECT_EQ(b.hash(), b_set.hash());
        EXPECT_EQ(a < b, a_set < b_set);
        EXPECT_EQ(b < a, b_set < a_set);
        EXPECT_EQ(a == b, a_set == b_set);

        // Binary operations, word seams included.
        EXPECT_EQ(a.is_subset_of(b), a_set.is_subset_of(b_set));
        EXPECT_EQ(a.intersects(b), a_set.intersects(b_set));
        EXPECT_EQ(a.union_with(b).to_label_set(), a_set.union_with(b_set));
        EXPECT_EQ(a.intersect_with(b).to_label_set(),
                  a_set.intersect_with(b_set));
        EXPECT_EQ(a.minus(b).to_label_set(), a_set.minus(b_set));
        EXPECT_EQ(a.complement().to_label_set(),
                  LabelSet::full(universe).minus(a_set));

        // Derived identities that catch stray bits beyond the universe cap:
        // |A| + |~A| = universe, A \ B and A cap B partition A.
        EXPECT_EQ(a.size() + a.complement().size(), universe);
        EXPECT_EQ(a.minus(b).size() + a.intersect_with(b).size(), a.size());
        EXPECT_TRUE(a.intersect_with(b).is_subset_of(a));
        EXPECT_FALSE(a.minus(b).intersects(b));

        // Mutation parity.
        auto mutated = a;
        LabelSet mutated_set = a_set;
        std::uniform_int_distribution<std::uint32_t> pick(
            0, static_cast<std::uint32_t>(universe - 1));
        for (int i = 0; i < 16; ++i) {
          const std::uint32_t l = pick(rng);
          if (mutated_set.contains(l)) {
            mutated.erase(l);
            mutated_set.erase(l);
          } else {
            mutated.insert(l);
            mutated_set.insert(l);
          }
          EXPECT_EQ(mutated.hash(), mutated_set.hash());
        }
        EXPECT_EQ(mutated.to_label_set(), mutated_set);
      }
    }
  }
}

TEST(LabelMaskWTest, MatchesLabelSetAcrossWordSeams2) {
  expect_matches_label_set<2>();
}
TEST(LabelMaskWTest, MatchesLabelSetAcrossWordSeams4) {
  expect_matches_label_set<4>();
}
TEST(LabelMaskWTest, MatchesLabelSetAcrossWordSeams8) {
  expect_matches_label_set<8>();
}

TEST(LabelMaskWTest, SingleWordTierStaysBitCompatible) {
  // LabelMask is LabelMaskW<1>; the template must preserve the historical
  // raw-word accessors the kernels build on.
  LabelMask m(10, 0b1011);
  EXPECT_EQ(m.word(), 0b1011u);
  EXPECT_EQ(LabelMask::universe_word(10), (std::uint64_t{1} << 10) - 1);
  EXPECT_EQ(LabelMask::universe_word(64), ~std::uint64_t{0});
  EXPECT_EQ(m.words()[0], m.word());
}

TEST(LabelMaskWTest, WordCapCoversPartialWords) {
  // universe 129 over 4 words: full, full, one bit, empty.
  EXPECT_EQ(LabelMaskW<4>::word_cap(129, 0), ~std::uint64_t{0});
  EXPECT_EQ(LabelMaskW<4>::word_cap(129, 1), ~std::uint64_t{0});
  EXPECT_EQ(LabelMaskW<4>::word_cap(129, 2), std::uint64_t{1});
  EXPECT_EQ(LabelMaskW<4>::word_cap(129, 3), std::uint64_t{0});
  const auto full = LabelMaskW<4>::full(129);
  EXPECT_EQ(full.size(), 129u);
  EXPECT_TRUE(full.contains(128));
  EXPECT_EQ(full.complement().size(), 0u);
}

TEST(LabelMaskWTest, ErrorBehaviourMirrorsLabelSet) {
  EXPECT_THROW(LabelMaskW<2>(129), std::invalid_argument);
  EXPECT_THROW(LabelMaskW<4>(257), std::invalid_argument);
  EXPECT_NO_THROW(LabelMaskW<2>(128));
  LabelMaskW<2> m(100);
  EXPECT_THROW(m.contains(100), std::out_of_range);
  EXPECT_THROW(m.insert(200), std::out_of_range);
  EXPECT_THROW(m.erase(1000), std::out_of_range);
  const LabelMaskW<2> other(99);
  EXPECT_THROW((void)m.is_subset_of(other), std::invalid_argument);
  EXPECT_THROW((void)m.union_with(other), std::invalid_argument);
  // Word-0 bits constructor range-checks against the universe cap.
  EXPECT_THROW(LabelMaskW<2>(3, 0b1000), std::out_of_range);
  EXPECT_NO_THROW(LabelMaskW<2>(3, 0b101));
}

/// Brute-force reference: all non-empty subsets of the given support,
/// materialized as masks, sorted descending by the mask order.
template <std::size_t W>
std::vector<LabelMaskW<W>> all_nonempty_submasks(
    std::size_t universe, const std::vector<std::uint32_t>& support) {
  std::vector<LabelMaskW<W>> out;
  const std::size_t count = std::size_t{1} << support.size();
  for (std::size_t pick = 1; pick < count; ++pick) {
    LabelMaskW<W> sub(universe);
    for (std::size_t i = 0; i < support.size(); ++i) {
      if ((pick >> i) & 1) sub.insert(support[i]);
    }
    out.push_back(sub);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return b < a; });
  return out;
}

template <std::size_t W>
void expect_subset_walk_exact(std::size_t universe,
                              const std::vector<std::uint32_t>& support) {
  LabelMaskW<W> mask(universe);
  for (const auto l : support) mask.insert(l);

  std::vector<LabelMaskW<W>> visited;
  for_each_nonempty_submask<W>(mask, [&](const LabelMaskW<W>& sub) {
    visited.push_back(sub);
  });

  // Completeness: exactly the 2^k - 1 non-empty subsets, each a subset of
  // the mask, in strictly decreasing numeric order.
  const auto expected = all_nonempty_submasks<W>(universe, support);
  ASSERT_EQ(visited.size(), expected.size());
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], expected[i]) << "position " << i;
    EXPECT_TRUE(visited[i].is_subset_of(mask));
    if (i > 0) {
      EXPECT_TRUE(visited[i] < visited[i - 1])
          << "walk not strictly decreasing at " << i;
    }
  }
}

TEST(LabelMaskWTest, SubmaskWalkCompleteAndDecreasingAcrossSeams) {
  // Supports straddling every seam a 2- or 4-word walk can borrow across:
  // the ripple step must clear whole zero words between set bits.
  expect_subset_walk_exact<2>(128, {0, 63, 64, 127});
  expect_subset_walk_exact<2>(100, {1, 2, 62, 65, 99});
  expect_subset_walk_exact<4>(256, {0, 63, 64, 127, 128, 191, 192, 255});
  expect_subset_walk_exact<4>(200, {5, 64, 130, 199});
  expect_subset_walk_exact<8>(512, {0, 100, 200, 300, 400, 511});
  // Degenerate cases: empty mask visits nothing; singleton visits itself.
  LabelMaskW<2> empty(128);
  std::size_t visits = 0;
  for_each_nonempty_submask<2>(empty, [&](const auto&) { ++visits; });
  EXPECT_EQ(visits, 0u);
  expect_subset_walk_exact<2>(128, {64});
}

TEST(LabelMaskWTest, WordsLevelWalkMatchesMaskLevelWalk) {
  // The raw-words walk is what the kernels consume; it must visit the same
  // sequence the mask-level wrapper reports.
  LabelMaskW<2> mask(128);
  for (const auto l : {3u, 63u, 64u, 127u}) mask.insert(l);
  std::vector<std::array<std::uint64_t, 2>> raw;
  for_each_nonempty_submask_words<2>(
      mask.words(),
      [&](const std::array<std::uint64_t, 2>& sub) { raw.push_back(sub); });
  std::vector<std::array<std::uint64_t, 2>> wrapped;
  for_each_nonempty_submask<2>(mask, [&](const LabelMaskW<2>& sub) {
    wrapped.push_back(sub.words());
  });
  EXPECT_EQ(raw, wrapped);
}

}  // namespace
}  // namespace lcl
