#include "re/engine.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "re/lift.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/zero_round.hpp"

namespace lcl {
namespace {

TEST(ZeroRound, TrivialProblemIsZeroRoundSolvable) {
  const auto witness = find_zero_round_algorithm(problems::trivial(3));
  ASSERT_TRUE(witness.has_value());
  // Applying the witness on any input tuple yields label 0 everywhere.
  EXPECT_EQ(witness->apply({0, 0, 0}), (std::vector<Label>{0, 0, 0}));
}

TEST(ZeroRound, ColoringIsNot) {
  EXPECT_FALSE(zero_round_solvable(problems::coloring(3, 2)));
  EXPECT_FALSE(zero_round_solvable(problems::coloring(4, 3)));
  EXPECT_FALSE(zero_round_solvable(problems::two_coloring(2)));
}

TEST(ZeroRound, OrientationNeedsSymmetryBreaking) {
  // any_orientation is O(1) (orient toward larger ID) but NOT 0-round: a
  // 0-round map would put some fixed label on two adjacent equal-degree
  // nodes, and neither {O,O} nor {I,I} is a valid edge.
  EXPECT_FALSE(zero_round_solvable(problems::any_orientation(2)));
  EXPECT_FALSE(zero_round_solvable(problems::sinkless_orientation(3)));
  EXPECT_FALSE(zero_round_solvable(problems::mis(3)));
  EXPECT_FALSE(zero_round_solvable(problems::maximal_matching(3)));
}

TEST(ZeroRound, WitnessRespectsInputs) {
  // Inputful problem where a 0-round solution exists: two output labels
  // u, v; every node/edge combination allowed; g forces u on input "a" and
  // v on input "b".
  Alphabet in({"a", "b"});
  Alphabet out({"u", "v"});
  NodeEdgeCheckableLcl::Builder b("forced-by-input", in, out, 2);
  b.allow_node({0}).allow_node({1}).allow_node({0, 0}).allow_node({0, 1});
  b.allow_node({1, 1});
  b.allow_edge(0, 0).allow_edge(0, 1).allow_edge(1, 1);
  b.allow_output_for_input(0, 0);
  b.allow_output_for_input(1, 1);
  const auto problem = b.build();

  const auto witness = find_zero_round_algorithm(problem);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->apply({0, 1}), (std::vector<Label>{0, 1}));
  EXPECT_EQ(witness->apply({1, 0}), (std::vector<Label>{1, 0}));

  // Same problem, but the mixed edge is forbidden: now inputs "a" and "b"
  // on the two sides of an edge force an invalid configuration, so no
  // 0-round (in fact no) algorithm exists.
  NodeEdgeCheckableLcl::Builder b2("forced-conflict", in, out, 2);
  b2.allow_node({0}).allow_node({1}).allow_node({0, 0}).allow_node({0, 1});
  b2.allow_node({1, 1});
  b2.allow_edge(0, 0).allow_edge(1, 1);
  b2.allow_output_for_input(0, 0);
  b2.allow_output_for_input(1, 1);
  EXPECT_FALSE(zero_round_solvable(b2.build()));
}

TEST(ZeroRound, ApplyUndoesSorting) {
  Alphabet in({"a", "b"});
  Alphabet out({"u", "v"});
  ZeroRoundAlgorithm algo;
  algo.outputs[{0, 1}] = {0, 1};  // sorted inputs a,b -> u,v
  EXPECT_EQ(algo.apply({1, 0}), (std::vector<Label>{1, 0}));
  EXPECT_EQ(algo.apply({0, 1}), (std::vector<Label>{0, 1}));
  EXPECT_THROW(algo.apply({0, 0}), std::out_of_range);
}

TEST(Lift, Lemma39OnPaths) {
  // Compute f(two_coloring) = Rbar(R(.)), solve it by brute force on an
  // even path, lift, and check the lifted labeling properly 2-colors.
  const auto pi = problems::two_coloring(2);
  SequenceLevel level;
  level.psi = apply_r(pi);
  level.next = apply_rbar(level.psi.problem);

  Graph g = make_path(6);
  const auto input = uniform_labeling(g, 0);
  const auto derived_solution =
      brute_force_solve(level.next.problem, g, input);
  ASSERT_TRUE(derived_solution.has_value());
  const auto check_derived =
      check_solution(level.next.problem, g, input, *derived_solution);
  ASSERT_TRUE(check_derived.ok()) << check_derived.to_string();

  const auto lifted = lift_solution(pi, level, g, input, *derived_solution);
  const auto check = check_solution(pi, g, input, lifted);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(Lift, Lemma39OnTreesForColoring) {
  const auto pi = problems::coloring(3, 3);
  SequenceLevel level;
  level.psi = apply_r(pi);
  level.next = apply_rbar(level.psi.problem);

  SplitRng rng(5);
  Graph g = make_random_tree(14, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto derived_solution =
      brute_force_solve(level.next.problem, g, input);
  ASSERT_TRUE(derived_solution.has_value());
  const auto lifted = lift_solution(pi, level, g, input, *derived_solution);
  EXPECT_TRUE(is_correct_solution(pi, g, input, lifted));
}

TEST(Engine, TrivialCollapsesAtStepZero) {
  SpeedupEngine engine(problems::trivial(3));
  const auto outcome = engine.run({});
  EXPECT_EQ(outcome.zero_round_step, 0);
  EXPECT_FALSE(outcome.budget_exhausted);
}

TEST(Engine, OrientationCollapsesQuicklyAndSynthesizes) {
  // any_orientation is 1-round solvable, so by the Theorem 3.10 machinery
  // f^1 of it must be 0-round solvable; the engine should find a small k
  // and synthesize a correct k-round algorithm.
  SpeedupEngine engine(problems::any_orientation(2));
  SpeedupEngine::Options options;
  options.max_steps = 3;
  const auto outcome = engine.run(options);
  ASSERT_GE(outcome.zero_round_step, 1);
  ASSERT_LE(outcome.zero_round_step, 3);

  const auto algorithm = engine.synthesize();
  EXPECT_EQ(algorithm->radius(1u << 20), outcome.zero_round_step);

  SplitRng rng(11);
  const auto problem = problems::any_orientation(2);
  for (std::size_t n : {2u, 7u, 40u}) {
    Graph g = make_path(n);
    const auto input = uniform_labeling(g, 0);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto output = run_ball_algorithm(*algorithm, g, input, ids);
    const auto check = check_solution(problem, g, input, output);
    EXPECT_TRUE(check.ok()) << "n=" << n << "\n" << check.to_string();
  }
}

TEST(Engine, LogStarProblemDoesNotCollapse) {
  // 3-coloring has complexity Theta(log* n): no f^k may become 0-round
  // solvable. Within a small step budget the engine must not claim success.
  SpeedupEngine engine(problems::coloring(3, 2));
  SpeedupEngine::Options options;
  options.max_steps = 3;
  options.limits.max_labels = 1u << 14;
  options.limits.max_configs = 2'000'000;
  const auto outcome = engine.run(options);
  EXPECT_EQ(outcome.zero_round_step, -1);
}

TEST(Engine, GlobalProblemDoesNotCollapse) {
  SpeedupEngine engine(problems::two_coloring(2));
  SpeedupEngine::Options options;
  options.max_steps = 3;
  const auto outcome = engine.run(options);
  EXPECT_EQ(outcome.zero_round_step, -1);
}

TEST(Engine, DetectsUnsolvableProblems) {
  // Output b is demanded by the edge constraint but allowed around no
  // node: trimming empties the alphabet and the engine reports it.
  Alphabet in({"-"});
  Alphabet out({"a", "b"});
  NodeEdgeCheckableLcl::Builder b("dead-end", in, out, 2);
  b.allow_node({0, 0}).allow_node({0});
  b.allow_edge(0, 1);
  b.unrestricted_inputs();
  SpeedupEngine engine(b.build());
  const auto outcome = engine.run({});
  EXPECT_TRUE(outcome.detected_unsolvable);
  EXPECT_EQ(outcome.zero_round_step, -1);
}

TEST(Engine, SynthesizeWithoutWitnessThrows) {
  SpeedupEngine engine(problems::coloring(3, 2));
  SpeedupEngine::Options options;
  options.max_steps = 1;
  engine.run(options);
  EXPECT_THROW(engine.synthesize(), std::logic_error);
}

TEST(Engine, ProblemAtTracksSequence) {
  SpeedupEngine engine(problems::two_coloring(2));
  SpeedupEngine::Options options;
  options.max_steps = 2;
  const auto outcome = engine.run(options);
  (void)outcome;
  EXPECT_EQ(&engine.problem_at(0), &engine.problem_at(0));
  if (engine.steps_applied() >= 1) {
    EXPECT_NE(engine.problem_at(1).name().find("Rbar"), std::string::npos);
  }
  EXPECT_THROW(engine.problem_at(engine.steps_applied() + 1),
               std::out_of_range);
}

}  // namespace
}  // namespace lcl
