#include "batch/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lcl.hpp"
#include "core/problems.hpp"
#include "lint/canonical.hpp"
#include "lint/spec.hpp"
#include "obs/json.hpp"

namespace lcl {
namespace {

using batch::Cache;
using batch::constraint_signature;
namespace json = obs::json;

json::Value tag(const std::string& text) {
  json::Value value = json::Value::make_object();
  value.object()["tag"] = json::Value(text);
  return value;
}

std::string tag_of(const json::Value& value) {
  const auto* t = value.find("tag");
  return (t != nullptr && t->is_string()) ? t->as_string() : std::string();
}

/// The `CollidingSignaturesAreNotIsomorphic` pair from test_core_lcl: the
/// same label count, per-degree configuration counts, and edge count, but
/// NOT the same (or even isomorphic) constraints.
NodeEdgeCheckableLcl colliding_a() {
  NodeEdgeCheckableLcl::Builder b("a", Alphabet({"-"}), Alphabet({"x", "y"}),
                                  2);
  b.allow_node({0});
  b.allow_node({0, 0});
  b.allow_edge(0, 0);
  b.allow_output_for_input(0, 0);
  b.allow_output_for_input(0, 1);
  return b.build();
}

NodeEdgeCheckableLcl colliding_b() {
  NodeEdgeCheckableLcl::Builder b("b", Alphabet({"-"}), Alphabet({"x", "y"}),
                                  2);
  b.allow_node({0});
  b.allow_node({0, 1});
  b.allow_edge(0, 1);
  b.allow_output_for_input(0, 0);
  b.allow_output_for_input(0, 1);
  return b.build();
}

TEST(ConstraintSignature, NameInsensitiveContentSensitive) {
  const auto mm = problems::maximal_matching(3);
  // Renaming the problem (what `same_constraints` ignores) keeps the
  // signature; the colliding pair differs in content, and here the real
  // hash also separates them.
  const auto mm2 = problems::maximal_matching(3);
  EXPECT_EQ(constraint_signature(mm), constraint_signature(mm2));
  EXPECT_NE(constraint_signature(colliding_a()),
            constraint_signature(colliding_b()));
  EXPECT_NE(constraint_signature(mm),
            constraint_signature(problems::two_coloring(2)));
}

TEST(BatchCache, StoresAndFindsByContent) {
  Cache cache;
  const auto mm = problems::maximal_matching(3);
  EXPECT_FALSE(cache.find("verdict", mm).has_value());
  cache.insert("verdict", mm, tag("mm"));
  const auto hit = cache.find("verdict", mm);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(tag_of(*hit), "mm");
  // Kind is part of the address.
  EXPECT_FALSE(cache.find("other-kind", mm).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(BatchCache, CollidingSignaturesNeverServeTheWrongEntry) {
  // A deliberately weak signature sends both problems to the same bucket;
  // the exact `same_constraints` confirmation must keep them apart.
  Cache::Options options;
  options.signature = [](const NodeEdgeCheckableLcl&) -> std::uint64_t {
    return 42;
  };
  Cache cache(std::move(options));
  const auto a = colliding_a();
  const auto b = colliding_b();
  cache.insert("verdict", a, tag("for-a"));

  // b collides with a's entry but must NOT be served a's value.
  EXPECT_FALSE(cache.find("verdict", b).has_value());
  EXPECT_GE(cache.stats().collisions, 1u);

  cache.insert("verdict", b, tag("for-b"));
  EXPECT_EQ(cache.size(), 2u);
  const auto hit_a = cache.find("verdict", a);
  const auto hit_b = cache.find("verdict", b);
  ASSERT_TRUE(hit_a.has_value());
  ASSERT_TRUE(hit_b.has_value());
  EXPECT_EQ(tag_of(*hit_a), "for-a");
  EXPECT_EQ(tag_of(*hit_b), "for-b");
}

TEST(BatchCache, DuplicateInsertIsANoOp) {
  Cache cache;
  const auto mm = problems::maximal_matching(3);
  cache.insert("verdict", mm, tag("first"));
  cache.insert("verdict", mm, tag("second"));  // ignored: already confirmed
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(tag_of(*cache.find("verdict", mm)), "first");
}

TEST(BatchCache, LruEvictionDropsTheColdestEntry) {
  Cache::Options options;
  options.capacity = 2;
  Cache cache(std::move(options));
  const auto mm = problems::maximal_matching(3);
  const auto tc = problems::two_coloring(2);
  const auto a = colliding_a();
  cache.insert("k", mm, tag("mm"));
  cache.insert("k", tc, tag("tc"));
  ASSERT_TRUE(cache.find("k", mm).has_value());  // touch: mm is now hottest
  cache.insert("k", a, tag("a"));                // evicts tc
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.find("k", mm).has_value());
  EXPECT_TRUE(cache.find("k", a).has_value());
  EXPECT_FALSE(cache.find("k", tc).has_value());
}

TEST(BatchCache, DiskTierRoundTripsAcrossInstances) {
  const std::string path = testing::TempDir() + "lcl_batch_cache_rt.jsonl";
  std::remove(path.c_str());
  const auto mm = problems::maximal_matching(3);
  const auto tc = problems::two_coloring(2);
  {
    Cache::Options options;
    options.disk_path = path;
    Cache cache(std::move(options));
    cache.insert("verdict", mm, tag("mm"));
    cache.insert("verdict", tc, tag("tc"));
  }
  {
    Cache::Options options;
    options.disk_path = path;
    options.load_existing = true;
    Cache cache(std::move(options));
    EXPECT_EQ(cache.stats().disk_loaded, 2u);
    const auto hit = cache.find("verdict", mm);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(tag_of(*hit), "mm");
    EXPECT_EQ(tag_of(*cache.find("verdict", tc)), "tc");
  }
  {
    // Cold open truncates: nothing survives.
    Cache::Options options;
    options.disk_path = path;
    options.load_existing = false;
    Cache cache(std::move(options));
    EXPECT_EQ(cache.stats().disk_loaded, 0u);
    EXPECT_FALSE(cache.find("verdict", mm).has_value());
  }
}

TEST(BatchCache, TornTrailingLineIsSkippedOnResume) {
  const std::string path = testing::TempDir() + "lcl_batch_cache_torn.jsonl";
  std::remove(path.c_str());
  const auto mm = problems::maximal_matching(3);
  {
    Cache::Options options;
    options.disk_path = path;
    Cache cache(std::move(options));
    cache.insert("verdict", mm, tag("mm"));
  }
  {
    // Simulate a writer killed mid-append: a truncated record at the tail.
    std::ofstream out(path, std::ios::app);
    out << "{\"kind\":\"verdict\",\"sig\":\"123\",\"prob";
  }
  Cache::Options options;
  options.disk_path = path;
  options.load_existing = true;
  Cache cache(std::move(options));
  EXPECT_EQ(cache.stats().disk_loaded, 1u);
  EXPECT_EQ(cache.stats().disk_skipped, 1u);
  EXPECT_EQ(tag_of(*cache.find("verdict", mm)), "mm");
  // The resumed cache keeps appending valid records after the torn line.
  cache.insert("verdict", problems::two_coloring(2), tag("tc"));
  Cache::Options reopen;
  reopen.disk_path = path;
  Cache again(std::move(reopen));
  EXPECT_EQ(again.stats().disk_loaded, 2u);
}

TEST(BatchCache, ResumeDoesNotDuplicateEntriesOrGrowTheFile) {
  const std::string path = testing::TempDir() + "lcl_batch_cache_flat.jsonl";
  std::remove(path.c_str());
  const auto mm = problems::maximal_matching(3);
  auto line_count = [&path]() {
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) ++n;
    return n;
  };
  {
    Cache::Options options;
    options.disk_path = path;
    Cache cache(std::move(options));
    cache.insert("verdict", mm, tag("mm"));
  }
  EXPECT_EQ(line_count(), 1u);
  {
    Cache::Options options;
    options.disk_path = path;
    Cache cache(std::move(options));
    cache.insert("verdict", mm, tag("mm"));  // already on disk: no-op
  }
  EXPECT_EQ(line_count(), 1u);
}

// ---------------------------------------------------------------------------
// The canonical key tier (`Options::canonical_tier`).

/// A permuted copy of `problem`: same constraint system with output labels
/// relabeled through `sigma` (old -> new).
NodeEdgeCheckableLcl permuted_copy(const NodeEdgeCheckableLcl& problem,
                                   const std::vector<Label>& sigma) {
  return lint::build_spec(
      lint::permute_spec(lint::spec_from_problem(problem), sigma));
}

TEST(BatchCacheCanonical, ServesPermutedProblemsWithEvidence) {
  Cache::Options options;
  options.canonical_tier = true;
  Cache cache(std::move(options));
  const auto mm = problems::maximal_matching(2);
  const std::vector<Label> sigma{2, 0, 1};
  const auto permuted = permuted_copy(mm, sigma);
  ASSERT_FALSE(same_constraints(mm, permuted));

  cache.insert("engine", mm, tag("verdict-for-mm"));
  // The raw tier does not know the permuted copy...
  EXPECT_FALSE(cache.find("engine", permuted).has_value());
  // ...but the canonical tier serves it, with the label permutation as
  // evidence: permuting the stored problem through it gives exactly the
  // query's constraints.
  const auto hit = cache.find_canonical("engine", permuted);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->permuted);
  EXPECT_EQ(tag_of(hit->value), "verdict-for-mm");
  ASSERT_EQ(hit->old_to_new.size(), mm.output_alphabet().size());
  EXPECT_TRUE(same_constraints(permuted_copy(mm, hit->old_to_new), permuted));
  EXPECT_EQ(cache.stats().canonical_hits, 1u);

  // Kind is still part of the address.
  EXPECT_FALSE(cache.find_canonical("other-kind", permuted).has_value());
}

TEST(BatchCacheCanonical, ExactTierWinsWithIdentityEvidence) {
  Cache::Options options;
  options.canonical_tier = true;
  Cache cache(std::move(options));
  const auto mm = problems::maximal_matching(2);
  cache.insert("engine", mm, tag("mm"));
  const auto hit = cache.find_canonical("engine", mm);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->permuted);
  for (std::size_t l = 0; l < hit->old_to_new.size(); ++l) {
    EXPECT_EQ(hit->old_to_new[l], static_cast<Label>(l));
  }
  EXPECT_EQ(cache.stats().canonical_hits, 0u);  // exact hits count as hits
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BatchCacheCanonical, TierOffMeansExactOnly) {
  Cache cache;  // canonical_tier defaults to off
  const auto mm = problems::maximal_matching(2);
  cache.insert("engine", mm, tag("mm"));
  const auto permuted = permuted_copy(mm, {2, 0, 1});
  EXPECT_FALSE(cache.find_canonical("engine", permuted).has_value());
  // find_canonical still answers exact queries (identity evidence).
  ASSERT_TRUE(cache.find_canonical("engine", mm).has_value());
}

TEST(BatchCacheCanonical, IneligibleEntriesAreNeverProbedCanonically) {
  Cache::Options options;
  options.canonical_tier = true;
  Cache cache(std::move(options));
  const auto mm = problems::maximal_matching(2);
  // "step:" style payloads embed derived specs - not label-invariant, so
  // the caller excludes them from the canonical index.
  cache.insert("step", mm, tag("payload"), nullptr,
               /*index_canonical=*/false);
  const auto permuted = permuted_copy(mm, {2, 0, 1});
  EXPECT_FALSE(cache.find_canonical("step", permuted).has_value());
  // Exactly addressed, the entry is still there.
  ASSERT_TRUE(cache.find("step", mm).has_value());
}

TEST(BatchCacheCanonical, CallerSuppliedFormSkipsNothingSemantically) {
  Cache::Options options;
  options.canonical_tier = true;
  Cache cache(std::move(options));
  const auto mm = problems::maximal_matching(2);
  const std::vector<Label> sigma{1, 2, 0};
  const auto permuted = permuted_copy(mm, sigma);
  const auto form = lint::canonical_form(lint::spec_from_problem(permuted));
  ASSERT_TRUE(form.complete);

  cache.insert("engine", mm, tag("mm"));
  const auto hit = cache.find_canonical("engine", permuted, &form);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->permuted);
  EXPECT_TRUE(same_constraints(permuted_copy(mm, hit->old_to_new), permuted));
}

TEST(BatchCacheCanonical, EligibilityRoundTripsThroughTheDiskTier) {
  const std::string path = testing::TempDir() + "lcl_batch_cache_canon.jsonl";
  std::remove(path.c_str());
  const auto mm = problems::maximal_matching(2);
  const auto mm_permuted = permuted_copy(mm, {2, 0, 1});
  ASSERT_FALSE(same_constraints(mm, mm_permuted));
  {
    Cache::Options options;
    options.disk_path = path;
    options.canonical_tier = true;
    Cache cache(std::move(options));
    cache.insert("engine", mm, tag("mm"));
    cache.insert("step", mm, tag("mm-step"), nullptr,
                 /*index_canonical=*/false);
  }
  Cache::Options options;
  options.disk_path = path;
  options.canonical_tier = true;
  Cache cache(std::move(options));
  EXPECT_EQ(cache.stats().disk_loaded, 2u);
  // The eligible entry is canonically addressable after replay; the
  // ineligible one is not (its "canon": false marker survived the disk
  // round trip).
  ASSERT_TRUE(cache.find_canonical("engine", mm_permuted).has_value());
  EXPECT_FALSE(cache.find_canonical("step", mm_permuted).has_value());
  ASSERT_TRUE(cache.find("step", mm).has_value());
}

}  // namespace
}  // namespace lcl
