// Cross-cutting properties of the round-elimination machinery: the sound
// reduction must preserve everything the theorems care about, and the
// operator semantics must survive composition.

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "re/lift.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/zero_round.hpp"

namespace lcl {
namespace {

std::vector<NodeEdgeCheckableLcl> battery() {
  std::vector<NodeEdgeCheckableLcl> problems;
  problems.push_back(problems::trivial(3));
  problems.push_back(problems::any_orientation(2));
  problems.push_back(problems::two_coloring(2));
  problems.push_back(problems::coloring(3, 2));
  problems.push_back(problems::sinkless_orientation(3));
  problems.push_back(problems::mis(2));
  problems.push_back(problems::maximal_matching(2));
  return problems;
}

TEST(ReProperties, ReductionPreservesZeroRoundSolvability) {
  for (const auto& pi : battery()) {
    const auto red = reduce(pi);
    EXPECT_EQ(zero_round_solvable(pi), zero_round_solvable(red.problem))
        << pi.name();
  }
}

TEST(ReProperties, ReductionPreservesInstanceSolvability) {
  // On a set of small instances, pi and reduce(pi) must be solvable on
  // exactly the same graphs.
  SplitRng rng(17);
  for (const auto& pi : battery()) {
    const auto red = reduce(pi);
    for (int i = 0; i < 4; ++i) {
      Graph g = make_random_tree(7 + 2 * i, pi.max_degree(), rng);
      const auto input = uniform_labeling(g, 0);
      EXPECT_EQ(brute_force_solvable(pi, g, input),
                brute_force_solvable(red.problem, g, input))
          << pi.name() << " instance " << i;
    }
  }
}

TEST(ReProperties, FaithfulAndReducedAgreeOnDerivedZeroRound) {
  // One f = Rbar o R step computed faithfully vs with reduction interleaved
  // must agree on 0-round solvability of the derived problem (the quantity
  // the gap theorem machinery reads off).
  for (const auto& pi : battery()) {
    ReLimits limits;
    limits.max_labels = 1u << 14;

    ReStep psi_f = apply_r(pi, limits);
    ReStep next_f = apply_rbar(psi_f.problem, limits);

    ReStep psi_r = apply_r(pi, limits);
    const auto red_psi = reduce(psi_r.problem);
    ReStep next_r = apply_rbar(red_psi.problem, limits);
    const auto red_next = reduce(next_r.problem);

    EXPECT_EQ(zero_round_solvable(next_f.problem),
              zero_round_solvable(red_next.problem))
        << pi.name();
  }
}

TEST(ReProperties, DerivedProblemSolvableExactlyWhereBaseIs) {
  // Rbar(R(pi)) is solvable on an instance iff pi is: one direction is the
  // Lemma 3.9 lifting, the other is the half-edge-wise singleton embedding
  // ({{l}} solves Rbar(R(pi)) wherever l solves pi).
  SplitRng rng(23);
  for (const auto& pi : battery()) {
    SequenceLevel level;
    level.psi = apply_r(pi);
    level.next = apply_rbar(level.psi.problem);
    for (std::size_t n : {4u, 6u, 9u}) {
      Graph g = make_random_tree(n, pi.max_degree(), rng);
      const auto input = uniform_labeling(g, 0);
      const bool base = brute_force_solvable(pi, g, input);
      const bool derived =
          brute_force_solvable(level.next.problem, g, input);
      EXPECT_EQ(base, derived) << pi.name() << " n=" << n;
      if (derived) {
        const auto solution =
            brute_force_solve(level.next.problem, g, input);
        const auto lifted = lift_solution(pi, level, g, input, *solution);
        EXPECT_TRUE(is_correct_solution(pi, g, input, lifted)) << pi.name();
      }
    }
  }
}

TEST(ReProperties, ZeroRoundWitnessProducesCorrectSolutions) {
  // Whenever the 0-round search succeeds, applying the witness at every
  // node of a forest must satisfy the checker - for inputful problems too.
  Alphabet in({"a", "b"});
  Alphabet out({"u", "v", "w"});
  NodeEdgeCheckableLcl::Builder b("inputful-zero-round", in, out, 3);
  for (int d = 1; d <= 3; ++d) {
    // Any multiset over {u, v} is fine around a node; w never allowed.
    for (int i = 0; i <= d; ++i) {
      std::vector<Label> config;
      config.insert(config.end(), static_cast<std::size_t>(i), 0);
      config.insert(config.end(), static_cast<std::size_t>(d - i), 1);
      b.allow_node(config);
    }
  }
  b.allow_edge(0, 0).allow_edge(0, 1).allow_edge(1, 1);
  b.allow_output_for_input(0, 0);  // input a forces u
  b.allow_output_for_input(1, 1);  // input b forces v
  const auto problem = b.build();

  const auto witness = find_zero_round_algorithm(problem);
  ASSERT_TRUE(witness.has_value());

  SplitRng rng(9);
  for (int i = 0; i < 5; ++i) {
    Graph g = make_random_forest(20, 4, 3, rng);
    const auto input = random_labeling(g, 2, rng);
    HalfEdgeLabeling output(g.half_edge_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const int degree = g.degree(v);
      if (degree == 0) continue;
      std::vector<Label> node_inputs(static_cast<std::size_t>(degree));
      for (int p = 0; p < degree; ++p) {
        node_inputs[static_cast<std::size_t>(p)] = input[g.half_edge(v, p)];
      }
      const auto labels = witness->apply(node_inputs);
      for (int p = 0; p < degree; ++p) {
        output[g.half_edge(v, p)] = labels[static_cast<std::size_t>(p)];
      }
    }
    const auto check = check_solution(problem, g, input, output);
    EXPECT_TRUE(check.ok()) << check.to_string();
  }
}

TEST(ReProperties, OperatorsPreserveInputAlphabet) {
  for (const auto& pi : battery()) {
    const auto r = apply_r(pi);
    const auto rbar = apply_rbar(pi);
    EXPECT_EQ(r.problem.input_alphabet().size(),
              pi.input_alphabet().size());
    EXPECT_EQ(rbar.problem.input_alphabet().size(),
              pi.input_alphabet().size());
    // Meanings are non-empty subsets of the base output alphabet.
    for (const auto& m : r.meaning) {
      EXPECT_FALSE(m.empty());
      EXPECT_EQ(m.universe(), pi.output_alphabet().size());
    }
  }
}

}  // namespace
}  // namespace lcl
