// Tests for lclscape::lint - the diagnostic framework, every L0xx pass,
// pruning soundness, the pre-flight integrations (speedup engine,
// classifiers, fuzz generator), and the lcl_lint CLI's exit-code contract.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "classify/cycle_classifier.hpp"
#include "classify/path_classifier.hpp"
#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "lint/analyzer.hpp"
#include "lint/diagnostic.hpp"
#include "lint/spec.hpp"
#include "lint/spec_io.hpp"
#include "local/view.hpp"
#include "re/engine.hpp"

namespace lcl {
namespace {

using lint::Code;
using lint::Diagnostic;
using lint::LintOptions;
using lint::LintReport;
using lint::ProblemSpec;
using lint::Severity;

int count_code(const LintReport& report, const char* code) {
  return static_cast<int>(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

// ---------------------------------------------------------------------------
// Diagnostic framework.

TEST(LintDiagnostic, SeverityOrderAndExitCodes) {
  EXPECT_LT(Severity::kInfo, Severity::kWarning);
  EXPECT_LT(Severity::kWarning, Severity::kError);

  std::vector<Diagnostic> diags;
  EXPECT_EQ(lint::exit_code(diags), 0);
  diags.push_back({Code::kZeroRoundTrivial, Severity::kInfo, "m", "o", 0});
  EXPECT_EQ(lint::exit_code(diags), 0);  // info does not dirty the exit
  diags.push_back({Code::kDeadLabel, Severity::kWarning, "m", "o", 1});
  EXPECT_EQ(lint::exit_code(diags), 1);
  diags.push_back({Code::kAlphabetArity, Severity::kError, "m", "o", 2});
  EXPECT_EQ(lint::exit_code(diags), 2);
  EXPECT_EQ(lint::max_severity(diags), Severity::kError);
}

TEST(LintDiagnostic, ToStringCarriesCodeSeverityAndLocation) {
  const Diagnostic d{Code::kDeadLabel, Severity::kWarning, "dead label",
                     "output_label", 3};
  const auto text = d.to_string();
  EXPECT_NE(text.find("L010"), std::string::npos);
  EXPECT_NE(text.find("warning"), std::string::npos);
  EXPECT_NE(text.find("output_label 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// L001: alphabet / arity consistency.

TEST(LintStructural, FlagsEveryClassOfSpecBreakage) {
  ProblemSpec spec;
  spec.name = "broken";
  spec.max_degree = 2;
  spec.inputs = {"-", "-"};           // duplicate input name
  spec.outputs = {"a", "a"};          // duplicate output name
  spec.node_configs = {{0, 1, 0}};    // arity 3 > max_degree
  spec.edge_configs = {{0}, {0, 7}};  // arity 1; undeclared label 7
  spec.g = {{0}};                     // 1 row for 2 inputs

  const auto report = lint::lint_spec(spec);
  EXPECT_FALSE(report.structurally_valid);
  EXPECT_EQ(report.severity(), Severity::kError);
  EXPECT_EQ(report.status(), 2);
  EXPECT_GE(count_code(report, Code::kAlphabetArity), 5);
  // Semantic passes are skipped on structural errors.
  EXPECT_EQ(count_code(report, Code::kDeadLabel), 0);
  EXPECT_TRUE(report.old_to_new.empty());
}

TEST(LintStructural, RejectsNonPositiveMaxDegreeAndEmptyAlphabets) {
  ProblemSpec spec;
  spec.name = "empty";
  spec.max_degree = 0;
  const auto report = lint::lint_spec(spec);
  EXPECT_FALSE(report.structurally_valid);
  EXPECT_GE(count_code(report, Code::kAlphabetArity), 3);
}

// ---------------------------------------------------------------------------
// L040 / L041: duplicates and canonical order.

TEST(LintCanonical, FlagsDuplicatesAndNonCanonicalOrder) {
  ProblemSpec spec;
  spec.name = "dups";
  spec.max_degree = 2;
  spec.inputs = {"-"};
  spec.outputs = {"a", "b"};
  spec.node_configs = {{1, 0}, {0, 1}, {0}};  // {b,a} unsorted + duplicate
  spec.edge_configs = {{0, 0}, {0, 0}};       // duplicate
  spec.g = {{1, 1, 0}};                       // duplicate g entry, unsorted

  const auto report = lint::lint_spec(spec);
  EXPECT_TRUE(report.structurally_valid);
  EXPECT_GE(count_code(report, Code::kDuplicateConfig), 3);
  EXPECT_GE(count_code(report, Code::kNonCanonicalConfig), 1);
  EXPECT_EQ(report.severity(), Severity::kWarning);

  // The canonical spec is deduped, sorted, and lint-stable: re-linting it
  // yields no L040/L041 (and no new warnings at all here).
  const auto again = lint::lint_spec(report.canonical);
  EXPECT_EQ(count_code(again, Code::kDuplicateConfig), 0);
  EXPECT_EQ(count_code(again, Code::kNonCanonicalConfig), 0);
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.canonical, report.canonical);
}

// ---------------------------------------------------------------------------
// L010-L013: the support fixpoint.

ProblemSpec cascade_spec() {
  // 'c' has no edge configuration -> dies in sweep 1, killing {a, c};
  // that starves 'a' (its only node configuration) -> dies in sweep 2.
  ProblemSpec spec;
  spec.name = "cascade";
  spec.max_degree = 2;
  spec.inputs = {"-"};
  spec.outputs = {"a", "b", "c"};
  spec.node_configs = {{0, 2}, {1}, {1, 1}};
  spec.edge_configs = {{0, 0}, {0, 1}, {1, 1}};
  spec.g = {{0, 1, 2}};
  return spec;
}

TEST(LintSupportFixpoint, CascadeTakesTwoSweepsAndPrunesToTheLiveCore) {
  const auto report = lint::lint_spec(cascade_spec());
  ASSERT_TRUE(report.structurally_valid);
  EXPECT_GE(report.fixpoint_iterations, 2);
  EXPECT_EQ(report.dead_labels, 2u);
  EXPECT_EQ(count_code(report, Code::kDeadLabel), 2);
  EXPECT_GE(count_code(report, Code::kVacuousConfig), 1);

  // Only 'b' survives; the mappings agree in both directions.
  ASSERT_EQ(report.canonical.outputs, std::vector<std::string>{"b"});
  ASSERT_EQ(report.new_to_old.size(), 1u);
  EXPECT_EQ(report.new_to_old[0], 1u);
  ASSERT_EQ(report.old_to_new.size(), 3u);
  EXPECT_EQ(report.old_to_new[0], LintReport::kDropped);
  EXPECT_EQ(report.old_to_new[1], 0u);
  EXPECT_EQ(report.old_to_new[2], LintReport::kDropped);

  // The live core is 0-round trivial via uniform 'b'.
  EXPECT_EQ(report.zero_round_label, 1);
  EXPECT_EQ(count_code(report, Code::kZeroRoundTrivial), 1);
}

TEST(LintSupportFixpoint, StarvedInputIsReportedPerGRow) {
  ProblemSpec spec;
  spec.name = "starved";
  spec.max_degree = 2;
  spec.inputs = {"i0", "i1"};
  spec.outputs = {"a", "b"};
  spec.node_configs = {{0}, {0, 0}};
  spec.edge_configs = {{0, 0}};
  spec.g = {{0}, {1}};  // i1 permits only 'b', and 'b' is dead

  const auto report = lint::lint_spec(spec);
  ASSERT_TRUE(report.structurally_valid);
  EXPECT_EQ(count_code(report, Code::kDeadLabel), 1);
  EXPECT_EQ(count_code(report, Code::kStarvedInput), 1);
  EXPECT_EQ(report.severity(), Severity::kWarning);
}

TEST(LintSupportFixpoint, UnpopulatedDegreeIsInfoOnly) {
  ProblemSpec spec;
  spec.name = "no-degree-1";
  spec.max_degree = 2;
  spec.inputs = {"-"};
  spec.outputs = {"a"};
  spec.node_configs = {{0, 0}};  // nothing of degree 1
  spec.edge_configs = {{0, 0}};
  spec.g = {{0}};

  const auto report = lint::lint_spec(spec);
  EXPECT_EQ(count_code(report, Code::kUnpopulatedDegree), 1);
  EXPECT_TRUE(report.clean());  // info only: exit 0
  EXPECT_EQ(report.status(), 0);
}

// ---------------------------------------------------------------------------
// L020 / L030: the semantic verdicts.

ProblemSpec unsolvable_spec() {
  // Node constraint uses only 'a', edge constraint only 'b': the support
  // fixpoint erases everything.
  ProblemSpec spec;
  spec.name = "void";
  spec.max_degree = 2;
  spec.inputs = {"-"};
  spec.outputs = {"a", "b"};
  spec.node_configs = {{0}, {0, 0}};
  spec.edge_configs = {{1, 1}};
  spec.g = {{0, 1}};
  return spec;
}

TEST(LintVerdicts, TrivialUnsolvabilityIsAnError) {
  const auto report = lint::lint_spec(unsolvable_spec());
  ASSERT_TRUE(report.structurally_valid);
  EXPECT_TRUE(report.trivially_unsolvable);
  EXPECT_EQ(count_code(report, Code::kUnsolvable), 1);
  EXPECT_EQ(report.status(), 2);

  // Ground truth: no solution on the 3-node path.
  const auto problem = lint::build_spec(unsolvable_spec());
  const Graph g = make_path(3);
  EXPECT_FALSE(
      brute_force_solvable(problem, g, uniform_labeling(g, 0), 100000));
}

TEST(LintVerdicts, ZeroRoundTrivialityMatchesTheExactDecisionProcedure) {
  const auto trivial = lint::lint_problem(problems::trivial(3));
  EXPECT_EQ(count_code(trivial, Code::kZeroRoundTrivial), 1);
  EXPECT_GE(trivial.zero_round_label, 0);
  EXPECT_TRUE(trivial.clean());

  // Maximal matching forbids {U,U}, so no uniform label works - and indeed
  // it is not 0-round solvable at all.
  const auto matching = lint::lint_problem(problems::maximal_matching(3));
  EXPECT_EQ(count_code(matching, Code::kZeroRoundTrivial), 0);
  EXPECT_EQ(matching.zero_round_label, -1);

  const auto coloring = lint::lint_problem(problems::coloring(3, 2));
  EXPECT_EQ(coloring.zero_round_label, -1);
}

TEST(LintVerdicts, WellFormedLandscapeProblemsAreClean) {
  for (const auto& problem :
       {problems::mis(3), problems::maximal_matching(3),
        problems::sinkless_orientation(3), problems::two_coloring(2)}) {
    const auto report = lint::lint_problem(problem);
    EXPECT_TRUE(report.clean()) << problem.name() << ":\n"
                                << report.to_text();
    EXPECT_EQ(report.dead_labels, 0u) << problem.name();
    EXPECT_FALSE(report.trivially_unsolvable) << problem.name();
  }
}

// ---------------------------------------------------------------------------
// prune_problem: the evidence-carrying rebuild.

NodeEdgeCheckableLcl with_junk_label(const NodeEdgeCheckableLcl& p,
                                     const std::string& junk) {
  // Append an output label that no constraint supports (dead on arrival).
  Alphabet output;
  for (Label l = 0; l < p.output_alphabet().size(); ++l) {
    output.add(p.output_alphabet().name(l));
  }
  output.add(junk);
  NodeEdgeCheckableLcl::Builder builder(p.name() + "+junk",
                                        p.input_alphabet(), std::move(output),
                                        p.max_degree());
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& config : p.node_configs(d)) {
      builder.allow_node(config.labels());
    }
  }
  for (const auto& config : p.edge_configs()) {
    builder.allow_edge(config[0], config[1]);
  }
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    for (const auto out : p.allowed_outputs(in).to_vector()) {
      builder.allow_output_for_input(in, out);
    }
    builder.allow_output_for_input(
        in, static_cast<Label>(p.output_alphabet().size()));
  }
  return builder.build();
}

TEST(LintPrune, RemovesJunkAndPreservesTheLiveProblem) {
  const auto original = problems::maximal_matching(3);
  const auto junked = with_junk_label(original, "J");
  ASSERT_EQ(junked.output_alphabet().size(),
            original.output_alphabet().size() + 1);

  const auto pruned = lint::prune_problem(junked);
  EXPECT_TRUE(pruned.changed);
  EXPECT_EQ(pruned.report.dead_labels, 1u);
  EXPECT_FALSE(pruned.report.trivially_unsolvable);
  EXPECT_EQ(pruned.problem.output_alphabet().size(),
            original.output_alphabet().size());
  EXPECT_TRUE(same_constraints(pruned.problem, original));
}

TEST(LintPrune, CleanProblemsComeBackUnchanged) {
  const auto original = problems::mis(3);
  const auto pruned = lint::prune_problem(original);
  EXPECT_FALSE(pruned.changed);
  EXPECT_EQ(pruned.report.dead_labels, 0u);
  EXPECT_TRUE(same_constraints(pruned.problem, original));
}

// ---------------------------------------------------------------------------
// Speedup-engine pre-flight.

TEST(LintEnginePreflight, TriviallyUnsolvableShortCircuitsTheRun) {
  SpeedupEngine engine(lint::build_spec(unsolvable_spec()));
  SpeedupEngine::Options options;
  options.max_steps = 3;
  const auto outcome = engine.run(options);
  EXPECT_TRUE(outcome.detected_unsolvable);
  EXPECT_EQ(outcome.zero_round_step, -1);
  EXPECT_TRUE(outcome.steps.empty());  // no operator was ever applied
  EXPECT_NE(outcome.blowup_message.find("L020"), std::string::npos);
}

TEST(LintEnginePreflight, PrunedBaseShrinksTheFirstOperatorApplication) {
  const auto junked = with_junk_label(problems::maximal_matching(2), "J");

  SpeedupEngine pruned_engine(junked);
  SpeedupEngine::Options with_lint;
  with_lint.max_steps = 1;
  // Reduction's trim would erase the J-contaminated power-set labels again
  // after the fact; run the faithful operators to expose what the pre-flight
  // saves the enumeration from paying.
  with_lint.reduce = false;
  const auto pruned_run = pruned_engine.run(with_lint);
  EXPECT_EQ(pruned_run.preflight_dead_labels, 1u);
  EXPECT_TRUE(pruned_run.preflight_pruned);
  EXPECT_EQ(pruned_engine.effective_base().output_alphabet().size(), 3u);
  // problem_at(0) is the problem as given, junk label included.
  EXPECT_EQ(pruned_engine.problem_at(0).output_alphabet().size(), 4u);

  // Pruned base: 3 live labels, so the faithful R produces 2^3 - 1 = 7 and
  // the step fits comfortably in the default limits.
  ASSERT_FALSE(pruned_run.steps.empty());
  EXPECT_FALSE(pruned_run.budget_exhausted);
  EXPECT_EQ(pruned_run.steps[0].labels_psi, 7u);

  // Without the pre-flight the dead label rides into R (2^4 - 1 = 15
  // labels), and Rbar's 2^15 - 1 then busts the enumeration limit: the
  // exact blow-up the pre-flight exists to cut off.
  SpeedupEngine raw_engine(junked);
  SpeedupEngine::Options no_lint = with_lint;
  no_lint.preflight_lint = false;
  const auto raw_run = raw_engine.run(no_lint);
  EXPECT_EQ(raw_run.preflight_dead_labels, 0u);
  EXPECT_FALSE(raw_run.preflight_pruned);
  EXPECT_TRUE(raw_run.steps.empty());
  EXPECT_TRUE(raw_run.budget_exhausted);
  EXPECT_NE(raw_run.blowup_message.find("2^15-1"), std::string::npos);
}

TEST(LintEnginePreflight, SynthesizedAlgorithmAnswersTheOriginalProblem) {
  // The cascade problem is 0-round trivial after pruning (uniform 'b'), but
  // label indices shift: pruned 0 must translate back to original 1.
  const auto problem = lint::build_spec(cascade_spec());
  SpeedupEngine engine(problem);
  SpeedupEngine::Options options;
  options.max_steps = 2;
  const auto outcome = engine.run(options);
  EXPECT_TRUE(outcome.preflight_pruned);
  ASSERT_EQ(outcome.zero_round_step, 0);

  const auto algorithm = engine.synthesize();
  const Graph g = make_path(5);
  const auto input = uniform_labeling(g, 0);
  const auto produced =
      run_ball_algorithm(*algorithm, g, input, sequential_ids(g));
  const auto check = check_solution(problem, g, input, produced);
  EXPECT_TRUE(check.ok()) << check.to_string();
  for (const auto label : produced) EXPECT_EQ(label, 1u);
}

// ---------------------------------------------------------------------------
// Classifier pre-flight.

TEST(LintClassifierPreflight, DeadLabelsDoNotChangeTheCycleClass) {
  const auto base = problems::two_coloring(2);
  const auto junked = with_junk_label(base, "J");

  const auto clean = classify_on_cycles(base);
  const auto pruned = classify_on_cycles(junked);
  EXPECT_EQ(clean.pruned_labels, 0u);
  EXPECT_EQ(pruned.pruned_labels, 1u);
  EXPECT_EQ(pruned.complexity, clean.complexity);
  EXPECT_EQ(pruned.complexity, CycleComplexity::kGlobal);
  EXPECT_EQ(pruned.scc_gcds, clean.scc_gcds);
}

TEST(LintClassifierPreflight, L020ShortCircuitsBothClassifiers) {
  const auto problem = lint::build_spec(unsolvable_spec());
  const auto cycles = classify_on_cycles(problem);
  EXPECT_EQ(cycles.complexity, CycleComplexity::kUnsolvable);
  EXPECT_EQ(cycles.pruned_labels, 2u);
  const auto paths = classify_on_paths(problem);
  EXPECT_EQ(paths.complexity, CycleComplexity::kUnsolvable);
  EXPECT_FALSE(paths.solvable_for_all_lengths);
  EXPECT_EQ(paths.pruned_labels, 2u);
}

TEST(LintClassifierPreflight, PathClassUnchangedUnderJunk) {
  const auto base = problems::maximal_matching(2);
  const auto junked = with_junk_label(base, "J");
  const auto clean = classify_on_paths(base);
  const auto pruned = classify_on_paths(junked);
  EXPECT_EQ(pruned.complexity, clean.complexity);
  EXPECT_EQ(pruned.pruned_labels, 1u);
}

// ---------------------------------------------------------------------------
// Fuzz-generator policies and the lint-soundness oracle.

TEST(LintFuzzGenerator, AnnotatePutsCodesInTheNote) {
  fuzz::GeneratorOptions options;
  options.lint_policy = fuzz::LintPolicy::kAnnotate;
  bool saw_annotation = false;
  for (std::uint64_t seed = 1; seed <= 200 && !saw_annotation; ++seed) {
    const auto c = fuzz::random_case(options, seed);
    if (!c.note.empty()) {
      EXPECT_EQ(c.note.rfind("lint: L0", 0), 0u) << c.note;
      saw_annotation = true;
    }
  }
  EXPECT_TRUE(saw_annotation)
      << "no degenerate draw in 200 seeds - generator or lint changed?";
}

TEST(LintFuzzGenerator, RejectBiasesTheStreamTowardCleanProblems) {
  fuzz::GeneratorOptions annotate;
  annotate.lint_policy = fuzz::LintPolicy::kAnnotate;
  fuzz::GeneratorOptions reject;
  reject.lint_policy = fuzz::LintPolicy::kReject;

  int degenerate_annotate = 0, degenerate_reject = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    if (!fuzz::random_case(annotate, seed).note.empty()) {
      ++degenerate_annotate;
    }
    SplitRng rng(seed);
    const auto problem = fuzz::random_problem(reject, rng);
    const auto report = lint::lint_problem(problem);
    if (report.severity() >= lint::Severity::kWarning) ++degenerate_reject;
  }
  ASSERT_GT(degenerate_annotate, 0);
  // Redraws may exhaust their budget, but most degenerate draws vanish.
  EXPECT_LT(degenerate_reject, degenerate_annotate);
}

TEST(LintSoundnessOracle, IsInTheBankAndPassesASeedSweep) {
  bool found = false;
  for (const auto& entry : fuzz::oracle_bank()) {
    found = found || std::string(entry.id) == "lint-soundness";
  }
  ASSERT_TRUE(found);

  fuzz::GeneratorOptions generator;  // annotate: degenerates stay in stream
  fuzz::OracleOptions oracle;
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto c = fuzz::random_case(generator, seed);
    const auto result = fuzz::run_oracle("lint-soundness", c, oracle);
    if (result.applicable) ++checked;
    EXPECT_FALSE(result.failed) << "seed " << seed << ": " << result.message;
  }
  EXPECT_GT(checked, 30);
}

TEST(LintSoundnessOracle, ConfirmsAHandBuiltL020Verdict) {
  fuzz::FuzzCase c;
  c.problem = lint::build_spec(unsolvable_spec());
  c.graph = make_path(4);
  c.input = uniform_labeling(c.graph, 0);
  c.family = "path";
  const auto result =
      fuzz::run_oracle("lint-soundness", c, fuzz::OracleOptions{});
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.failed) << result.message;
}

// ---------------------------------------------------------------------------
// Spec I/O.

TEST(LintSpecIo, RoundTripsThroughJsonAndDetectsWrappers) {
  const auto spec =
      lint::spec_from_problem(problems::maximal_matching(3));
  bool wrapped = true;
  const auto back = lint::spec_from_json(lint::spec_to_json(spec), &wrapped);
  EXPECT_FALSE(wrapped);
  EXPECT_EQ(back, spec);

  const std::string as_case =
      "{\"oracle\":\"synthesis\",\"problem\":" + lint::spec_to_json(spec) +
      "}";
  const auto from_case = lint::spec_from_json(as_case, &wrapped);
  EXPECT_TRUE(wrapped);
  EXPECT_EQ(from_case, spec);

  // A built problem round-trips through build_spec as the same constraints.
  const auto rebuilt = lint::build_spec(back);
  EXPECT_TRUE(same_constraints(rebuilt, problems::maximal_matching(3)));
}

// ---------------------------------------------------------------------------
// The lcl_lint CLI: exit codes 0 / 1 / 2 / 3 and --fix.

class LintCliTest : public ::testing::Test {
 protected:
  static std::string write_spec(const std::string& name,
                                const ProblemSpec& spec) {
    const std::string path = ::testing::TempDir() + "lcl_lint_" + name;
    lint::save_spec(path, spec);
    return path;
  }

  static int run_cli(const std::string& args) {
    const std::string command =
        std::string(LCL_LINT_CLI_PATH) + " " + args + " >/dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
  }
};

TEST_F(LintCliTest, ExitCodeReflectsTheWorstDiagnostic) {
  const auto clean = write_spec(
      "clean.json", lint::spec_from_problem(problems::maximal_matching(2)));
  const auto warn = write_spec("warn.json", cascade_spec());
  ProblemSpec invalid = cascade_spec();
  invalid.edge_configs.push_back({0});  // arity error
  const auto error = write_spec("error.json", invalid);

  EXPECT_EQ(run_cli(clean), 0);
  EXPECT_EQ(run_cli(warn), 1);
  EXPECT_EQ(run_cli(error), 2);
  EXPECT_EQ(run_cli("--json " + clean), 0);
  // Several files: the worst verdict wins.
  EXPECT_EQ(run_cli(clean + " " + warn), 1);
  EXPECT_EQ(run_cli(clean + " " + warn + " " + error), 2);
  // Usage / IO errors are 3, distinct from lint verdicts.
  EXPECT_EQ(run_cli(""), 3);
  EXPECT_EQ(run_cli("--no-such-flag " + clean), 3);
  EXPECT_EQ(run_cli(::testing::TempDir() + "lcl_lint_does_not_exist.json"),
            3);
}

TEST_F(LintCliTest, FixRewritesInPlaceUntilClean) {
  const auto path = write_spec("fixme.json", cascade_spec());
  EXPECT_EQ(run_cli("--fix " + path), 1);  // reports, then repairs
  EXPECT_EQ(run_cli(path), 0);             // now at worst info

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  bool wrapped = true;
  const auto fixed = lint::spec_from_json(text, &wrapped);
  EXPECT_FALSE(wrapped);
  EXPECT_EQ(fixed.outputs, std::vector<std::string>{"b"});
}

TEST_F(LintCliTest, FixRefusesStructurallyInvalidSpecs) {
  ProblemSpec invalid = cascade_spec();
  invalid.node_configs.push_back({9});  // undeclared label
  const auto path = write_spec("invalid.json", invalid);
  // L001 is in the non-fixable set: the batch is refused with the usage/
  // refusal exit code, distinct from the lint verdict.
  EXPECT_EQ(run_cli("--fix " + path), 3);
  // The file is untouched: it still lints as an error.
  EXPECT_EQ(run_cli(path), 2);
}

}  // namespace
}  // namespace lcl
