// Unit tests for the 0-round machinery: `ZeroRoundAlgorithm::apply` on
// tuples with duplicate input labels, and the `ReBlowupError` boundary of
// the derived-alphabet enumeration in the R / Rbar operators.

#include "re/zero_round.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/problems.hpp"
#include "re/operators.hpp"

namespace lcl {
namespace {

TEST(ZeroRoundApply, DuplicateInputsKeepPortOrder) {
  ZeroRoundAlgorithm algo;
  // For the sorted tuple (0, 0, 1): the two smallest inputs answer 5 then
  // 6 (in port order, by stability), the largest answers 7.
  algo.outputs[{0, 0, 1}] = {5, 6, 7};

  EXPECT_EQ(algo.apply({0, 0, 1}), (std::vector<Label>{5, 6, 7}));
  EXPECT_EQ(algo.apply({1, 0, 0}), (std::vector<Label>{7, 5, 6}));
  EXPECT_EQ(algo.apply({0, 1, 0}), (std::vector<Label>{5, 7, 6}));
}

TEST(ZeroRoundApply, AllInputsEqual) {
  ZeroRoundAlgorithm algo;
  algo.outputs[{2, 2}] = {4, 9};
  // Equal inputs are tied; stable sort keeps ports in place.
  EXPECT_EQ(algo.apply({2, 2}), (std::vector<Label>{4, 9}));
}

TEST(ZeroRoundApply, UnknownTupleThrows) {
  ZeroRoundAlgorithm algo;
  algo.outputs[{0}] = {1};
  EXPECT_THROW(algo.apply({1}), std::out_of_range);
  EXPECT_THROW(algo.apply({0, 0}), std::out_of_range);
}

/// A problem that genuinely is 0-round solvable and one that is not - the
/// witness returned must agree with the decision procedure.
TEST(ZeroRound, WitnessMatchesDecision) {
  const auto trivial = problems::trivial(3);
  EXPECT_TRUE(zero_round_solvable(trivial));
  const auto witness = find_zero_round_algorithm(trivial);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->outputs.empty());

  const auto coloring = problems::coloring(3, 3);
  EXPECT_FALSE(zero_round_solvable(coloring));
  EXPECT_FALSE(find_zero_round_algorithm(coloring).has_value());
}

/// `R(Pi)`'s output alphabet is `2^k - 1` labels for `k` base labels; the
/// limit boundary must be exact: passing at exactly `2^k - 1`, throwing one
/// below.
TEST(ReLimitsBoundary, ExactAlphabetLimitPasses) {
  const auto pi = problems::coloring(3, 2);  // k = 3 output labels
  ReLimits limits;
  limits.max_labels = 7;  // 2^3 - 1
  const auto step = apply_r(pi, limits);
  EXPECT_EQ(step.problem.output_alphabet().size(), 7u);
}

TEST(ReLimitsBoundary, OneBelowAlphabetLimitThrows) {
  const auto pi = problems::coloring(3, 2);
  ReLimits limits;
  limits.max_labels = 6;  // one below 2^3 - 1
  EXPECT_THROW(apply_r(pi, limits), ReBlowupError);
  EXPECT_THROW(apply_rbar(pi, limits), ReBlowupError);
}

TEST(ReLimitsBoundary, HugeBaseAlphabetThrowsRegardlessOfLimit) {
  // `derive_alphabet` refuses base alphabets of >= 63 labels outright
  // (the subset count no longer fits the bitset universe).
  Alphabet wide;
  for (int i = 0; i < 63; ++i) {
    std::string name = "l";
    name += std::to_string(i);
    wide.add(name);
  }
  NodeEdgeCheckableLcl::Builder b2("wide", Alphabet({"-"}), std::move(wide),
                                   2);
  b2.allow_node({0});
  b2.allow_node({0, 0});
  b2.allow_edge(0, 0);
  for (Label l = 0; l < 63; ++l) b2.allow_output_for_input(0, l);
  const auto pi = b2.build();
  ReLimits limits;
  limits.max_labels = static_cast<std::size_t>(-1);
  EXPECT_THROW(apply_r(pi, limits), ReBlowupError);
}

}  // namespace
}  // namespace lcl
