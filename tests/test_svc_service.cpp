// The lcld application layer: routing, spec validation, verdict parity
// with SpeedupEngine::run, the canonical cache tier across permuted
// re-requests, per-request budget isolation, admission control, async
// surveys, and the spawned-daemon end-to-end contract (ephemeral port,
// the full API over real HTTP, SIGTERM drain exiting 0).

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "lint/spec.hpp"
#include "lint/spec_io.hpp"
#include "obs/json.hpp"
#include "re/engine.hpp"
#include "svc/http.hpp"
#include "svc/service.hpp"

namespace lcl::svc {
namespace {

namespace json = lcl::obs::json;

// A problem whose constraint system is NOT invariant under the a<->b label
// swap, so the permuted copy below exercises the canonical tier (equal
// canonical signature, different raw signature).
constexpr const char* kAsymSpec = R"({
  "name": "asym", "max_degree": 2,
  "inputs": ["-"], "outputs": ["a", "b"],
  "node_configs": [[0], [0, 0], [0, 1]],
  "edge_configs": [[0, 0], [0, 1]],
  "g": [[0, 1]]
})";

// kAsymSpec with output labels 0<->1 swapped everywhere.
constexpr const char* kAsymPermutedSpec = R"({
  "name": "asym-permuted", "max_degree": 2,
  "inputs": ["-"], "outputs": ["a", "b"],
  "node_configs": [[1], [1, 1], [0, 1]],
  "edge_configs": [[1, 1], [0, 1]],
  "g": [[0, 1]]
})";

// Perfect matching on degree-2 nodes: solvable, nontrivial, cheap.
constexpr const char* kMatchingSpec = R"({
  "name": "mm", "max_degree": 2,
  "inputs": ["-"], "outputs": ["m", "u"],
  "node_configs": [[0], [1], [0, 1], [1, 1]],
  "edge_configs": [[0, 0], [0, 1], [1, 1]],
  "g": [[0, 1]]
})";

HttpRequest make_request(const std::string& method, const std::string& path,
                         const std::string& body = std::string()) {
  HttpRequest request;
  request.method = method;
  request.target = path;
  request.path = path;
  request.version = "HTTP/1.1";
  request.body = body;
  return request;
}

std::unique_ptr<json::Value> parse_json(const std::string& text) {
  std::string error;
  auto value = json::parse(text, &error);
  EXPECT_NE(value, nullptr) << error << " in: " << text;
  return value;
}

std::int64_t int_at(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  EXPECT_NE(field, nullptr) << "missing " << key;
  return field == nullptr ? -999 : field->as_int();
}

std::string string_at(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  EXPECT_NE(field, nullptr) << "missing " << key;
  return field == nullptr ? "" : field->as_string();
}

Service::Options small_options() {
  Service::Options options;
  options.jobs = 2;
  options.engine.max_steps = 4;
  return options;
}

TEST(SvcService, RoutesHealthzVersionAndUnknown) {
  Service service(small_options());
  EXPECT_EQ(service.handle(make_request("GET", "/healthz")).body, "ok\n");
  EXPECT_EQ(service.handle(make_request("POST", "/healthz")).status, 405);

  const HttpResponse version = service.handle(make_request("GET", "/version"));
  EXPECT_EQ(version.status, 200);
  const auto body = parse_json(version.body);
  EXPECT_EQ(string_at(*body, "tool"), "lcld");
  EXPECT_FALSE(string_at(*body, "git_sha").empty());
  EXPECT_FALSE(string_at(*body, "version").empty());

  const HttpResponse missing = service.handle(make_request("GET", "/v2/x"));
  EXPECT_EQ(missing.status, 404);
  const auto error = parse_json(missing.body);
  EXPECT_EQ(string_at(*error->find("error"), "code"), "not_found");
}

TEST(SvcService, ClassifyMatchesSpeedupEngineRun) {
  Service service(small_options());
  const HttpResponse response =
      service.handle(make_request("POST", "/v1/classify", kMatchingSpec));
  ASSERT_EQ(response.status, 200) << response.body;
  const auto body = parse_json(response.body);
  const json::Value* outcome = body->find("outcome");
  ASSERT_NE(outcome, nullptr);

  // The reference verdict, computed directly with the engine the service
  // rides on (same step budget, forest degrees).
  SpeedupEngine engine(lint::build_spec(lint::spec_from_json(kMatchingSpec)));
  SpeedupEngine::Options options;
  options.max_steps = 4;
  const SpeedupEngine::Outcome reference = engine.run(options);

  EXPECT_EQ(int_at(*outcome, "zero_round_step"), reference.zero_round_step);
  EXPECT_EQ(outcome->find("fixed_point")->as_bool(), reference.fixed_point);
  EXPECT_EQ(outcome->find("detected_unsolvable")->as_bool(),
            reference.detected_unsolvable);
  EXPECT_EQ(string_at(*body, "schema"), "lclscape.svc.v1");
  EXPECT_FALSE(string_at(*body, "run_id").empty());
}

TEST(SvcService, PermutedReRequestServedFromCanonicalTier) {
  Service service(small_options());
  const HttpResponse first =
      service.handle(make_request("POST", "/v1/classify", kAsymSpec));
  ASSERT_EQ(first.status, 200) << first.body;
  const auto first_body = parse_json(first.body);
  EXPECT_EQ(int_at(*first_body->find("cache"), "canonical_hits"), 0);

  const HttpResponse second =
      service.handle(make_request("POST", "/v1/classify", kAsymPermutedSpec));
  ASSERT_EQ(second.status, 200) << second.body;
  const auto second_body = parse_json(second.body);

  // Same label-permutation class: identical verdict, served through the
  // canonical tier instead of recomputed.
  EXPECT_EQ(string_at(*first_body->find("outcome"), "class"),
            string_at(*second_body->find("outcome"), "class"));
  EXPECT_EQ(string_at(*first_body->find("outcome"), "canonical_key"),
            string_at(*second_body->find("outcome"), "canonical_key"));
  EXPECT_GT(int_at(*second_body->find("cache"), "canonical_hits"), 0);

  // /metrics carries the same counter for scrapers.
  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  EXPECT_NE(metrics.body.find("svc_cache_canonical_hits"), std::string::npos);
}

TEST(SvcService, BudgetExceededFailsOnlyThatRequest) {
  Service service(small_options());
  // A cross-check on a 10-node path with a 1-step budget cannot finish:
  // the row records StepBudgetExceeded, the response maps it to 422.
  const std::string body = std::string(R"({"problem": )") + kMatchingSpec +
                           R"(, "options": {"check_nodes": 10,
                              "check_budget": 1}})";
  const HttpResponse blown =
      service.handle(make_request("POST", "/v1/classify", body));
  EXPECT_EQ(blown.status, 422) << blown.body;
  const auto blown_body = parse_json(blown.body);
  const json::Value* error = blown_body->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(string_at(*error, "code"), "step_budget_exceeded");
  EXPECT_EQ(int_at(*error->find("detail"), "budget"), 1);

  // The daemon is unharmed: the same problem under the default budget
  // resolves cleanly right after.
  const HttpResponse clean =
      service.handle(make_request("POST", "/v1/classify", kMatchingSpec));
  EXPECT_EQ(clean.status, 200) << clean.body;
}

TEST(SvcService, InvalidSpecAndBadJsonAreStructuredErrors) {
  Service service(small_options());

  const HttpResponse bad_json =
      service.handle(make_request("POST", "/v1/classify", "{nope"));
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_EQ(string_at(*parse_json(bad_json.body)->find("error"), "code"),
            "bad_request");

  // Structurally broken: a node configuration referencing output label 9.
  const HttpResponse invalid = service.handle(make_request(
      "POST", "/v1/classify",
      R"({"name":"bad","max_degree":2,"inputs":["-"],"outputs":["a"],
          "node_configs":[[9]],"edge_configs":[[0,0]],"g":[[0]]})"));
  EXPECT_EQ(invalid.status, 422);
  const auto invalid_body = parse_json(invalid.body);
  EXPECT_EQ(string_at(*invalid_body->find("error"), "code"), "invalid_spec");
  // The lint report rides along as the error detail.
  EXPECT_NE(invalid_body->find("error")->find("lint"), nullptr);
}

TEST(SvcService, LintEndpointReturnsFullReport) {
  Service service(small_options());
  const HttpResponse response =
      service.handle(make_request("POST", "/v1/lint", kAsymSpec));
  ASSERT_EQ(response.status, 200) << response.body;
  const auto body = parse_json(response.body);
  const json::Value* lint = body->find("lint");
  ASSERT_NE(lint, nullptr);
  EXPECT_NE(lint->find("diagnostics"), nullptr);
}

TEST(SvcService, SynthesizeReportsRadiusForSolvableProblem) {
  Service service(small_options());
  const HttpResponse response =
      service.handle(make_request("POST", "/v1/synthesize", kMatchingSpec));
  ASSERT_EQ(response.status, 200) << response.body;
  const auto body = parse_json(response.body);
  ASSERT_TRUE(body->find("found")->as_bool()) << response.body;
  // The synthesized algorithm's radius is the 0-round step index
  // (Theorem 3.10's k).
  EXPECT_EQ(int_at(*body, "radius"), int_at(*body, "zero_round_step"));
}

TEST(SvcService, SurveyRunsAsyncAndAdmissionControlRejectsBeyondCap) {
  Service::Options options = small_options();
  options.max_inflight = 1;
  Service service(options);

  // 49 members: long enough that the slot is still held right after the
  // 202 comes back, short enough for a test.
  const HttpResponse accepted = service.handle(make_request(
      "POST", "/v1/survey",
      R"({"family":{"kind":"exhaustive","max_degree":2,"labels":2},
          "options":{"max_steps":2}})"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string id = string_at(*parse_json(accepted.body), "survey_id");
  ASSERT_FALSE(id.empty());

  // The survey holds the only admission slot; a compute request bounces.
  const HttpResponse rejected =
      service.handle(make_request("POST", "/v1/classify", kMatchingSpec));
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_EQ(string_at(*parse_json(rejected.body)->find("error"), "code"),
            "overloaded");

  // Poll until done; the report is the standard survey schema.
  for (int i = 0; i < 600; ++i) {
    const HttpResponse status =
        service.handle(make_request("GET", "/v1/survey/" + id));
    ASSERT_EQ(status.status, 200) << status.body;
    const auto body = parse_json(status.body);
    if (string_at(*body, "status") == "done") {
      const json::Value* report = body->find("report");
      ASSERT_NE(report, nullptr);
      EXPECT_EQ(string_at(*report, "schema"), "lclscape.survey.v3");
      EXPECT_EQ(int_at(*report->find("survey"), "problems"), 49);

      // Slot released: compute requests are admitted again.
      const HttpResponse after =
          service.handle(make_request("POST", "/v1/classify", kMatchingSpec));
      EXPECT_EQ(after.status, 200) << after.body;
      return;
    }
    EXPECT_EQ(string_at(*body, "status"), "running");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "survey did not finish";
}

TEST(SvcService, ShardedSurveyEchoesItsManifest) {
  Service service(small_options());
  const HttpResponse accepted = service.handle(make_request(
      "POST", "/v1/survey",
      R"({"family":{"kind":"exhaustive","max_degree":2,"labels":2},
          "shard":{"index":1,"count":4},
          "options":{"max_steps":2}})"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const auto posted = parse_json(accepted.body);
  const std::string id = string_at(*posted, "survey_id");

  // The 202 and every GET carry the lclscape.shards.v1 manifest: this
  // shard's slice of the 49-member family, identified by index/count.
  const json::Value* manifest = posted->find("shard");
  ASSERT_NE(manifest, nullptr) << accepted.body;
  EXPECT_EQ(string_at(*manifest, "schema"), "lclscape.shards.v1");
  EXPECT_EQ(int_at(*manifest->find("shard"), "index"), 1);
  EXPECT_EQ(int_at(*manifest->find("shard"), "count"), 4);
  EXPECT_EQ(int_at(*manifest, "members_total"), 49);
  const std::size_t shard_members =
      manifest->find("members")->as_array().size();
  EXPECT_GT(shard_members, 0u);
  EXPECT_LT(shard_members, 49u);
  EXPECT_EQ(int_at(*posted, "problems"),
            static_cast<std::int64_t>(shard_members));

  for (int i = 0; i < 600; ++i) {
    const HttpResponse status =
        service.handle(make_request("GET", "/v1/survey/" + id));
    ASSERT_EQ(status.status, 200) << status.body;
    const auto body = parse_json(status.body);
    const json::Value* echoed = body->find("shard");
    ASSERT_NE(echoed, nullptr) << status.body;
    EXPECT_EQ(int_at(*echoed->find("shard"), "index"), 1);
    if (string_at(*body, "status") == "done") {
      const json::Value* report = body->find("report");
      ASSERT_NE(report, nullptr);
      EXPECT_EQ(int_at(*report->find("survey"), "problems"),
                static_cast<std::int64_t>(shard_members));
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "sharded survey did not finish";
}

TEST(SvcService, SurveyRejectsMalformedShardBlocks) {
  Service service(small_options());
  for (const char* body :
       {R"({"family":{"kind":"exhaustive"},"shard":42})",
        R"({"family":{"kind":"exhaustive"},"shard":{"index":4,"count":4}})",
        R"({"family":{"kind":"exhaustive"},"shard":{"index":0,"count":0}})",
        R"({"family":{"kind":"exhaustive"},"shard":{"count":2}})"}) {
    const HttpResponse response =
        service.handle(make_request("POST", "/v1/survey", body));
    EXPECT_EQ(response.status, 400) << body << " -> " << response.body;
  }
}

TEST(SvcService, UnknownSurveyIdIs404) {
  Service service(small_options());
  EXPECT_EQ(service.handle(make_request("GET", "/v1/survey/nope")).status,
            404);
}

TEST(SvcService, ConcurrentClassifiesWithMetricsScrapesDoNotStall) {
  Service::Options options = small_options();
  options.jobs = 4;
  options.max_inflight = 16;
  Service service(options);

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&service, &stop, &scrapes]() {
    while (!stop.load()) {
      const HttpResponse metrics =
          service.handle(make_request("GET", "/metrics"));
      if (metrics.status == 200) scrapes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kRequests = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, &ok]() {
      for (int i = 0; i < kRequests; ++i) {
        const HttpResponse response = service.handle(
            make_request("POST", "/v1/classify", kMatchingSpec));
        // Warm-cache classifies may still bounce off max_inflight under
        // load; both outcomes are healthy, a stall is not.
        if (response.status == 200 || response.status == 429) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_GT(scrapes.load(), 0);
}

#ifdef LCL_LCLD_PATH

/// Spawns the real daemon on an ephemeral port, talks to it over real
/// HTTP, and SIGTERMs it: the full deployment contract in one test.
TEST(SvcDaemonE2E, ClassifyTwiceCanonicalHitThenGracefulDrain) {
  const std::string dir = testing::TempDir() + "lcld_e2e";
  const std::string port_file = dir + "/port.txt";
  std::filesystem::create_directories(dir);
  std::filesystem::remove(port_file);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const std::string port_arg = "--port-file=" + port_file;
    const std::string cache_arg = "--cache-dir=" + dir;
    execl(LCL_LCLD_PATH, "lcld", "--port=0", port_arg.c_str(),
          cache_arg.c_str(), "--jobs=2", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // Wait for the daemon to publish its bound port.
  std::uint16_t port = 0;
  for (int i = 0; i < 200 && port == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    std::ifstream in(port_file);
    unsigned value = 0;
    if (in >> value && value != 0) port = static_cast<std::uint16_t>(value);
  }
  ASSERT_NE(port, 0) << "daemon never wrote " << port_file;

  const auto health = http_request("127.0.0.1", port, "GET", "/healthz");
  EXPECT_EQ(health.status, 200);

  const auto first =
      http_request("127.0.0.1", port, "POST", "/v1/classify", kAsymSpec);
  ASSERT_EQ(first.status, 200) << first.body;
  const auto second = http_request("127.0.0.1", port, "POST", "/v1/classify",
                                   kAsymPermutedSpec);
  ASSERT_EQ(second.status, 200) << second.body;

  const auto first_body = parse_json(first.body);
  const auto second_body = parse_json(second.body);
  EXPECT_EQ(string_at(*first_body->find("outcome"), "class"),
            string_at(*second_body->find("outcome"), "class"));
  EXPECT_GT(int_at(*second_body->find("cache"), "canonical_hits"), 0);

  // Graceful drain: SIGTERM, exit code 0.
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

#endif  // LCL_LCLD_PATH

}  // namespace
}  // namespace lcl::svc
