#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lcl.hpp"
#include "core/problems.hpp"
#include "re/kernel.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/step.hpp"

namespace lcl {
namespace {

ReLimits with_kernel(ReKernel kernel) {
  ReLimits limits;
  limits.kernel = kernel;
  return limits;
}

/// The parity fence of the kernel rewrite: on every battery problem, the
/// mask kernels and the original generic enumeration must build the *same*
/// derived problem - same alphabet names in the same order, same
/// constraints, same g, same meanings - for both operators. Anything the
/// engine, batch surveys, lint preflight, or fuzz oracles observe is
/// downstream of these objects, so byte-identical verdicts follow.
void expect_kernels_agree(const NodeEdgeCheckableLcl& pi) {
  for (const bool use_r : {true, false}) {
    const auto apply = use_r ? &apply_r : &apply_rbar;
    const ReStep generic = apply(pi, with_kernel(ReKernel::kGeneric));
    const ReStep mask = apply(pi, with_kernel(ReKernel::kMask));
    const ReStep automatic = apply(pi, with_kernel(ReKernel::kAuto));
    SCOPED_TRACE(pi.name() + (use_r ? " / R" : " / Rbar"));

    ASSERT_EQ(generic.problem.output_alphabet().size(),
              mask.problem.output_alphabet().size());
    for (Label l = 0; l < generic.problem.output_alphabet().size(); ++l) {
      ASSERT_EQ(generic.problem.output_alphabet().name(l),
                mask.problem.output_alphabet().name(l));
    }
    EXPECT_TRUE(same_constraints(generic.problem, mask.problem));
    EXPECT_TRUE(same_constraints(generic.problem, automatic.problem));
    EXPECT_EQ(generic.problem.name(), mask.problem.name());
    ASSERT_EQ(generic.meaning.size(), mask.meaning.size());
    for (std::size_t i = 0; i < generic.meaning.size(); ++i) {
      EXPECT_EQ(generic.meaning[i], mask.meaning[i]) << "meaning " << i;
      EXPECT_EQ(generic.meaning[i], automatic.meaning[i]);
    }
  }
}

TEST(ReKernelParity, BatteryProblemsDeriveIdentically) {
  expect_kernels_agree(problems::two_coloring(2));
  expect_kernels_agree(problems::coloring(3, 2));
  expect_kernels_agree(problems::coloring(3, 3));
  expect_kernels_agree(problems::mis(3));
  expect_kernels_agree(problems::maximal_matching(3));
  expect_kernels_agree(problems::sinkless_orientation(3));
  expect_kernels_agree(problems::any_orientation(3));
  expect_kernels_agree(problems::perfect_matching(3));
  expect_kernels_agree(problems::weak_coloring(2, 3));
  expect_kernels_agree(problems::trivial(3));
}

// One iterate deep: parity must survive composition, i.e. hold on problems
// that are themselves kernel outputs (reduced, as the engine runs them).
TEST(ReKernelParity, HoldsOnReducedFirstIterates) {
  for (const auto& seed :
       {problems::coloring(3, 3), problems::sinkless_orientation(3)}) {
    ReStep step = apply_r(seed, with_kernel(ReKernel::kGeneric));
    const Reduction reduced = reduce(step.problem);
    expect_kernels_agree(reduced.problem);
  }
}

TEST(ReKernelParity, BlowupErrorsMatchAcrossKernels) {
  // 13 output labels -> 2^13 - 1 = 8191 derived labels > max_labels = 4096:
  // both kernels must refuse identically (the guard runs pre-dispatch).
  const auto big = problems::coloring(13, 2);
  std::string generic_message;
  std::string mask_message;
  try {
    apply_r(big, with_kernel(ReKernel::kGeneric));
    FAIL() << "expected ReBlowupError";
  } catch (const ReBlowupError& e) {
    generic_message = e.what();
  }
  try {
    apply_r(big, with_kernel(ReKernel::kMask));
    FAIL() << "expected ReBlowupError";
  } catch (const ReBlowupError& e) {
    mask_message = e.what();
  }
  EXPECT_EQ(generic_message, mask_message);
  EXPECT_FALSE(generic_message.empty());
}

TEST(NodeConfigIndexTest, AgreesWithNodeAllowsOnAllMultisets) {
  for (const auto& pi : {problems::mis(3), problems::coloring(3, 3),
                         problems::maximal_matching(3)}) {
    const NodeConfigIndex index(pi);
    const std::size_t n = pi.output_alphabet().size();
    for (int d = 1; d <= pi.max_degree(); ++d) {
      ASSERT_TRUE(index.packable(static_cast<std::size_t>(d)));
      // Every multiset over the alphabet, in canonical sorted form.
      std::vector<Label> tuple(static_cast<std::size_t>(d), 0);
      while (true) {
        std::vector<Label> sorted = tuple;
        std::sort(sorted.begin(), sorted.end());
        const bool expected = pi.node_allows(Configuration(sorted));
        EXPECT_EQ(index.allows_sorted(sorted.data(), sorted.size()), expected)
            << pi.name() << " d=" << d;
        std::size_t pos = tuple.size();
        while (pos > 0 && tuple[pos - 1] + 1 == n) --pos;
        if (pos == 0) break;
        ++tuple[pos - 1];
        std::fill(tuple.begin() + static_cast<std::ptrdiff_t>(pos),
                  tuple.end(), tuple[pos - 1]);
      }
    }
  }
}

TEST(NodeConfigIndexTest, FallsBackWhenDegreeDoesNotPack) {
  // 5 labels -> 3 bits per label; degree 22 needs 66 bits, so the packed
  // path is off and probes must still answer through the fallback.
  const auto pi = problems::coloring(5, 22);
  const NodeConfigIndex index(pi);
  EXPECT_FALSE(index.packable(22));
  EXPECT_TRUE(index.packable(21));
  std::vector<Label> rainbow;
  for (Label l = 0; l < 22; ++l) rainbow.push_back(l % 5);
  std::sort(rainbow.begin(), rainbow.end());
  EXPECT_EQ(index.allows_sorted(rainbow.data(), rainbow.size()),
            pi.node_allows(Configuration(rainbow)));
  const std::vector<Label> mono(22, 0);
  EXPECT_EQ(index.allows_sorted(mono.data(), mono.size()),
            pi.node_allows(Configuration(mono)));
}

}  // namespace
}  // namespace lcl
