#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "core/lcl.hpp"
#include "core/problems.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "re/kernel.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/step.hpp"

namespace lcl {
namespace {

ReLimits with_kernel(ReKernel kernel) {
  ReLimits limits;
  limits.kernel = kernel;
  return limits;
}

/// Metrics collection is off by default; the fallback-counter fences flip
/// it on for their scope (and restore the previous state on exit).
class MetricsOn {
 public:
  MetricsOn() : previous_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(true);
  }
  ~MetricsOn() { obs::set_metrics_enabled(previous_); }

 private:
  bool previous_;
};

/// Every mask tier the battery compares against the generic baseline. The
/// wider tiers run the same fill with zero upper words on these bases -
/// that redundancy is deliberate: a word-seam arithmetic slip shows up as a
/// constraint difference here long before a 65+-label iterate hits it.
const ReKernel kMaskTiers[] = {ReKernel::kMask, ReKernel::kMask2,
                               ReKernel::kMask4, ReKernel::kAuto};

const char* tier_name(ReKernel k) {
  switch (k) {
    case ReKernel::kAuto:
      return "kAuto";
    case ReKernel::kGeneric:
      return "kGeneric";
    case ReKernel::kMask:
      return "kMask";
    case ReKernel::kMask2:
      return "kMask2";
    case ReKernel::kMask4:
      return "kMask4";
    case ReKernel::kMask8:
      return "kMask8";
  }
  return "?";
}

/// The parity fence of the kernel rewrite: on every battery problem, every
/// mask tier and the original generic enumeration must build the *same*
/// derived problem - same alphabet names in the same order, same
/// constraints, same g, same meanings - for both operators. Anything the
/// engine, batch surveys, lint preflight, or fuzz oracles observe is
/// downstream of these objects, so byte-identical verdicts follow.
void expect_kernels_agree(const NodeEdgeCheckableLcl& pi) {
  for (const bool use_r : {true, false}) {
    const auto apply = use_r ? &apply_r : &apply_rbar;
    const ReStep generic = apply(pi, with_kernel(ReKernel::kGeneric));
    for (const ReKernel tier : kMaskTiers) {
      const ReStep mask = apply(pi, with_kernel(tier));
      SCOPED_TRACE(pi.name() + (use_r ? " / R / " : " / Rbar / ") +
                   tier_name(tier));

      ASSERT_EQ(generic.problem.output_alphabet().size(),
                mask.problem.output_alphabet().size());
      for (Label l = 0; l < generic.problem.output_alphabet().size(); ++l) {
        ASSERT_EQ(generic.problem.output_alphabet().name(l),
                  mask.problem.output_alphabet().name(l));
      }
      EXPECT_TRUE(same_constraints(generic.problem, mask.problem));
      EXPECT_EQ(generic.problem.name(), mask.problem.name());
      ASSERT_EQ(generic.meaning.size(), mask.meaning.size());
      for (std::size_t i = 0; i < generic.meaning.size(); ++i) {
        EXPECT_EQ(generic.meaning[i], mask.meaning[i]) << "meaning " << i;
      }
      EXPECT_EQ(batch::constraint_signature(generic.problem),
                batch::constraint_signature(mask.problem));
    }
  }
}

TEST(ReKernelParity, BatteryProblemsDeriveIdentically) {
  expect_kernels_agree(problems::two_coloring(2));
  expect_kernels_agree(problems::coloring(3, 2));
  expect_kernels_agree(problems::coloring(3, 3));
  expect_kernels_agree(problems::mis(3));
  expect_kernels_agree(problems::maximal_matching(3));
  expect_kernels_agree(problems::sinkless_orientation(3));
  expect_kernels_agree(problems::any_orientation(3));
  expect_kernels_agree(problems::perfect_matching(3));
  expect_kernels_agree(problems::weak_coloring(2, 3));
  expect_kernels_agree(problems::trivial(3));
}

// One iterate deep: parity must survive composition, i.e. hold on problems
// that are themselves kernel outputs (reduced, as the engine runs them).
TEST(ReKernelParity, HoldsOnReducedFirstIterates) {
  for (const auto& seed :
       {problems::coloring(3, 3), problems::sinkless_orientation(3)}) {
    ReStep step = apply_r(seed, with_kernel(ReKernel::kGeneric));
    const Reduction reduced = reduce(step.problem);
    expect_kernels_agree(reduced.problem);
  }
}

TEST(ReKernelParity, BlowupErrorsMatchAcrossKernels) {
  // 13 output labels -> 2^13 - 1 = 8191 derived labels > max_labels = 4096:
  // every kernel must refuse identically (the guard runs pre-dispatch), so
  // ReLimits blow-up diagnostics never depend on the tier in use.
  const auto big = problems::coloring(13, 2);
  std::string generic_message;
  try {
    apply_r(big, with_kernel(ReKernel::kGeneric));
    FAIL() << "expected ReBlowupError";
  } catch (const ReBlowupError& e) {
    generic_message = e.what();
  }
  EXPECT_FALSE(generic_message.empty());
  for (const ReKernel tier : kMaskTiers) {
    SCOPED_TRACE(tier_name(tier));
    std::string mask_message;
    try {
      apply_r(big, with_kernel(tier));
      FAIL() << "expected ReBlowupError";
    } catch (const ReBlowupError& e) {
      mask_message = e.what();
    }
    EXPECT_EQ(generic_message, mask_message);
  }
}

TEST(ReKernelParity, ConfigBlowupErrorsMatchAcrossKernels) {
  // A base that passes the alphabet guard but trips the configuration-count
  // guard: 11 labels at degree 3 -> 2047 derived labels, ~1.4e9 candidate
  // multisets > max_configs. The counting happens pre-dispatch too.
  const auto big = problems::coloring(11, 3);
  std::string generic_message;
  try {
    apply_rbar(big, with_kernel(ReKernel::kGeneric));
    FAIL() << "expected ReBlowupError";
  } catch (const ReBlowupError& e) {
    generic_message = e.what();
  }
  EXPECT_NE(generic_message.find("candidate configurations"),
            std::string::npos);
  for (const ReKernel tier : kMaskTiers) {
    SCOPED_TRACE(tier_name(tier));
    std::string mask_message;
    try {
      apply_rbar(big, with_kernel(tier));
      FAIL() << "expected ReBlowupError";
    } catch (const ReBlowupError& e) {
      mask_message = e.what();
    }
    EXPECT_EQ(generic_message, mask_message);
  }
}

/// Reduction parity on a wide-alphabet problem: every kernel choice must
/// drop/merge exactly the same labels in the same order - the maps record
/// the full history, so comparing them fences the scan order, not just the
/// fixed point.
void expect_reduce_parity(const NodeEdgeCheckableLcl& p) {
  const Reduction generic = reduce(p, ReKernel::kGeneric);
  for (const ReKernel tier : kMaskTiers) {
    SCOPED_TRACE(p.name() + " / " + tier_name(tier));
    const Reduction masked = reduce(p, tier);
    EXPECT_TRUE(same_constraints(generic.problem, masked.problem));
    ASSERT_EQ(generic.problem.output_alphabet().size(),
              masked.problem.output_alphabet().size());
    for (Label l = 0; l < generic.problem.output_alphabet().size(); ++l) {
      EXPECT_EQ(generic.problem.output_alphabet().name(l),
                masked.problem.output_alphabet().name(l));
    }
    EXPECT_EQ(generic.old_to_new, masked.old_to_new);
    EXPECT_EQ(generic.new_to_old, masked.new_to_old);
  }
}

TEST(ReKernelParity, ReduceAgreesOnWordBoundaryAlphabets) {
  // threshold_band keeps the dominated-label pass firing across the whole
  // alphabet, so reducing a 65..129-label instance walks the pass through
  // every intermediate size - every mask tier transition included. The
  // sizes bracket both word seams of the 1->2 and 2->4 tier boundaries.
  for (const int labels : {63, 64, 65, 127, 128, 129}) {
    expect_reduce_parity(problems::threshold_band(labels, 8));
  }
}

TEST(ReKernelParity, WideIterateStaysOnMaskTiersUnderAuto) {
  // The acceptance case of the multi-word lift: a 7-label base derives a
  // 2^7 - 1 = 127-label iterate; reducing it under kAuto must run entirely
  // on mask tiers (no re.kernel_fallback increment) and agree with the
  // generic scan byte for byte. Degree 1 keeps the (many) dominated-label
  // cascades cheap while still walking the pass through every alphabet
  // size from 127 down across the 64-label seam.
  const auto base = problems::coloring(7, 1);
  ReStep step = apply_r(base, with_kernel(ReKernel::kAuto));
  ASSERT_EQ(step.problem.output_alphabet().size(), 127u);

  const MetricsOn metrics;
  const std::uint64_t fallbacks_before =
      obs::registry().counter("re.kernel_fallback").value();
  const Reduction masked = reduce(step.problem, ReKernel::kAuto);
  EXPECT_EQ(obs::registry().counter("re.kernel_fallback").value(),
            fallbacks_before)
      << "a 127-label iterate must fit the 2-word tier, not fall back";

  const Reduction generic = reduce(step.problem, ReKernel::kGeneric);
  EXPECT_TRUE(same_constraints(generic.problem, masked.problem));
  EXPECT_EQ(generic.old_to_new, masked.old_to_new);
  EXPECT_EQ(generic.new_to_old, masked.new_to_old);
  EXPECT_EQ(batch::constraint_signature(generic.problem),
            batch::constraint_signature(masked.problem));
}

TEST(ReKernelParity, KernelFallbackPastWidestTierIsCountedAndSound) {
  // 516 labels > the widest (8-word, 512-label) tier: the dominated pass
  // must fall back to the generic scan, say so through re.kernel_fallback,
  // and still produce the generic result. Degree-1 band problem so the
  // cascade of drops stays cheap.
  constexpr int kLabels = 516;
  NodeEdgeCheckableLcl::Builder b("wide-band", Alphabet({"-"}),
                                  [] {
                                    Alphabet out;
                                    for (int l = 0; l < kLabels; ++l) {
                                      std::ostringstream os;
                                      os << 'w' << l;
                                      out.add(os.str());
                                    }
                                    return out;
                                  }(),
                                  /*max_degree=*/1);
  for (Label l = 0; l < kLabels; ++l) {
    b.allow_node({l});
    for (Label p = l; p < std::min<Label>(kLabels, l + 9); ++p) {
      b.allow_edge(l, p);
    }
  }
  b.unrestricted_inputs();
  const auto wide = b.build();

  const MetricsOn metrics;
  const std::uint64_t fallbacks_before =
      obs::registry().counter("re.kernel_fallback").value();
  const Reduction masked = reduce(wide, ReKernel::kAuto);
  if (obs::telemetry_compiled_in()) {  // counters are no-ops under LCL_OBS=0
    EXPECT_GT(obs::registry().counter("re.kernel_fallback").value(),
              fallbacks_before)
        << "a 516-label alphabet outgrows every mask tier - the generic "
           "fallback must be recorded, not silent";
  }

  const Reduction generic = reduce(wide, ReKernel::kGeneric);
  EXPECT_TRUE(same_constraints(generic.problem, masked.problem));
  EXPECT_EQ(generic.old_to_new, masked.old_to_new);
  EXPECT_EQ(generic.new_to_old, masked.new_to_old);
}

TEST(ReKernelParity, ParallelEnumerationIsDeterministic) {
  // jobs=1 (inline) vs jobs=4 (pool-partitioned) must build byte-identical
  // problems - constraints, meanings, and batch cache signatures - for both
  // operators. The merge happens in partition order, so this holds exactly,
  // not just up to reordering.
  for (const auto& pi :
       {problems::coloring(5, 3), problems::sinkless_orientation(3),
        problems::mis(3), problems::forbidden_color(4, 2)}) {
    for (const bool use_r : {true, false}) {
      const auto apply = use_r ? &apply_r : &apply_rbar;
      ReLimits serial = with_kernel(ReKernel::kMask);
      serial.jobs = 1;
      ReLimits parallel = with_kernel(ReKernel::kMask);
      parallel.jobs = 4;
      const ReStep one = apply(pi, serial);
      const ReStep four = apply(pi, parallel);
      SCOPED_TRACE(pi.name() + (use_r ? " / R" : " / Rbar"));
      EXPECT_TRUE(same_constraints(one.problem, four.problem));
      ASSERT_EQ(one.meaning.size(), four.meaning.size());
      for (std::size_t i = 0; i < one.meaning.size(); ++i) {
        EXPECT_EQ(one.meaning[i], four.meaning[i]);
      }
      EXPECT_EQ(batch::constraint_signature(one.problem),
                batch::constraint_signature(four.problem));
      // And the parallel result agrees with the generic baseline too.
      const ReStep generic = apply(pi, with_kernel(ReKernel::kGeneric));
      EXPECT_TRUE(same_constraints(generic.problem, four.problem));
    }
  }
}

TEST(NodeConfigIndexTest, AgreesWithNodeAllowsOnAllMultisets) {
  for (const auto& pi : {problems::mis(3), problems::coloring(3, 3),
                         problems::maximal_matching(3)}) {
    const NodeConfigIndex index(pi);
    const std::size_t n = pi.output_alphabet().size();
    for (int d = 1; d <= pi.max_degree(); ++d) {
      ASSERT_TRUE(index.packable(static_cast<std::size_t>(d)));
      // Every multiset over the alphabet, in canonical sorted form.
      std::vector<Label> tuple(static_cast<std::size_t>(d), 0);
      while (true) {
        std::vector<Label> sorted = tuple;
        std::sort(sorted.begin(), sorted.end());
        const bool expected = pi.node_allows(Configuration(sorted));
        EXPECT_EQ(index.allows_sorted(sorted.data(), sorted.size()), expected)
            << pi.name() << " d=" << d;
        std::size_t pos = tuple.size();
        while (pos > 0 && tuple[pos - 1] + 1 == n) --pos;
        if (pos == 0) break;
        ++tuple[pos - 1];
        std::fill(tuple.begin() + static_cast<std::ptrdiff_t>(pos),
                  tuple.end(), tuple[pos - 1]);
      }
    }
  }
}

TEST(NodeConfigIndexTest, TwoWordKeysCoverDegreesPast64Bits) {
  // 5 labels -> 3 bits per label. One word covers degrees up to 21
  // (63 bits); the two-word tier picks up 22..42 (66..126 bits); degree 43
  // (129 bits) is the first unpackable one.
  const auto pi = problems::coloring(5, 22);
  const NodeConfigIndex index(pi);
  EXPECT_EQ(index.packed_words(21), 1u);
  EXPECT_EQ(index.packed_words(22), 2u);
  EXPECT_EQ(index.packed_words(42), 2u);
  EXPECT_EQ(index.packed_words(43), 0u);
  EXPECT_TRUE(index.packable(22));

  // Probes through the two-word tier answer exactly like node_allows.
  std::vector<Label> rainbow;
  for (Label l = 0; l < 22; ++l) rainbow.push_back(l % 5);
  std::sort(rainbow.begin(), rainbow.end());
  EXPECT_EQ(index.allows_sorted(rainbow.data(), rainbow.size()),
            pi.node_allows(Configuration(rainbow)));
  for (Label c = 0; c < 5; ++c) {
    const std::vector<Label> mono(22, c);
    EXPECT_EQ(index.allows_sorted(mono.data(), mono.size()),
              pi.node_allows(Configuration(mono)));
    EXPECT_TRUE(index.allows_sorted(mono.data(), mono.size()));
  }
  // Two configs differing only in the highest-order (first) label must not
  // collide across the hi/lo word split.
  std::vector<Label> near_mono(22, 1);
  near_mono[21] = 2;  // sorted: {1 x21, 2}
  EXPECT_EQ(index.allows_sorted(near_mono.data(), near_mono.size()),
            pi.node_allows(Configuration(near_mono)));
  EXPECT_FALSE(index.allows_sorted(near_mono.data(), near_mono.size()));
}

TEST(NodeConfigIndexTest, FallsBackWhenDegreeDoesNotPack) {
  // 5 labels -> 3 bits per label; degree 43 needs 129 bits, beyond even the
  // two-word keys, so probes must still answer through the fallback.
  const auto pi = problems::coloring(5, 43);
  const NodeConfigIndex index(pi);
  EXPECT_FALSE(index.packable(43));
  EXPECT_TRUE(index.packable(42));
  std::vector<Label> rainbow;
  for (Label l = 0; l < 43; ++l) rainbow.push_back(l % 5);
  std::sort(rainbow.begin(), rainbow.end());
  EXPECT_EQ(index.allows_sorted(rainbow.data(), rainbow.size()),
            pi.node_allows(Configuration(rainbow)));
  const std::vector<Label> mono(43, 0);
  EXPECT_EQ(index.allows_sorted(mono.data(), mono.size()),
            pi.node_allows(Configuration(mono)));
}

}  // namespace
}  // namespace lcl
