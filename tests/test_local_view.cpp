#include "local/view.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "local/forest_transform.hpp"
#include "local/order_invariant.hpp"

namespace lcl {
namespace {

TEST(LocalView, VisibilityRules) {
  Graph g = make_path(10);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  const LocalView view(g, 5, 2, input, ids, nullptr, 10);

  EXPECT_EQ(view.center(), 5u);
  EXPECT_EQ(view.radius(), 2);
  EXPECT_TRUE(view.contains(3));
  EXPECT_TRUE(view.contains(7));
  EXPECT_FALSE(view.contains(8));
  EXPECT_EQ(view.distance(7), 2);
  EXPECT_THROW(view.distance(8), std::logic_error);

  // Interior nodes expose edges; boundary nodes do not (Definition 2.1).
  EXPECT_EQ(view.neighbor(6, 1), 7u);
  EXPECT_THROW(view.neighbor(7, 1), std::logic_error);
  // Inputs/ids/degrees visible up to the boundary.
  EXPECT_EQ(view.id(7), 8u);
  EXPECT_EQ(view.degree(7), 2);
  EXPECT_EQ(view.input(7, 0), 0u);
  EXPECT_THROW(view.id(8), std::logic_error);
}

TEST(LocalView, SeedsRequireSupply) {
  Graph g = make_path(3);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  const LocalView no_seeds(g, 1, 1, input, ids, nullptr, 3);
  EXPECT_THROW(no_seeds.seed(1), std::logic_error);

  std::vector<std::uint64_t> seeds{7, 8, 9};
  const LocalView with_seeds(g, 1, 1, input, ids, &seeds, 3);
  EXPECT_EQ(with_seeds.seed(1), 8u);
}

TEST(LocalView, RestrictedSubview) {
  Graph g = make_path(10);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  const LocalView view(g, 5, 3, input, ids, nullptr, 10);
  const LocalView sub = view.restricted(7, 1);
  EXPECT_EQ(sub.center(), 7u);
  EXPECT_EQ(sub.radius(), 1);
  EXPECT_TRUE(sub.contains(8));
  EXPECT_FALSE(sub.contains(5));
  EXPECT_THROW(view.restricted(7, 2), std::logic_error);
}

TEST(LocalView, WithAdvertised) {
  Graph g = make_path(4);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  const LocalView view(g, 0, 1, input, ids, nullptr, 4);
  EXPECT_EQ(view.with_advertised(16).advertised_n(), 16u);
  EXPECT_EQ(view.advertised_n(), 4u);
}

TEST(RunBallAlgorithm, OrientByIdIsCorrectAndOrderInvariant) {
  SplitRng rng(17);
  Graph g = make_random_tree(40, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const OrientByIdOrder algo;
  const auto output = run_ball_algorithm(algo, g, input, ids);
  const auto problem = problems::any_orientation(3);
  EXPECT_TRUE(is_correct_solution(problem, g, input, output));
  EXPECT_TRUE(check_order_invariance(algo, g, input, ids, 5, rng));
}

TEST(OrderInvariance, DetectsIdDependentAlgorithm) {
  // An algorithm that outputs the parity of the raw ID value is *not*
  // order-invariant; the checker must catch it.
  class IdParity final : public BallAlgorithm {
   public:
    int radius(std::size_t) const override { return 0; }
    std::vector<Label> outputs(const LocalView& view) const override {
      const Label l = static_cast<Label>(view.id(view.center()) % 2);
      return std::vector<Label>(
          static_cast<std::size_t>(view.degree(view.center())), l);
    }
  };
  SplitRng rng(3);
  Graph g = make_path(20);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  EXPECT_FALSE(check_order_invariance(IdParity{}, g, input, ids, 20, rng));
}

TEST(FrozenAlgorithm, CollapsesRadiusAndStaysCorrect) {
  const WastefulOrientByIdOrder wasteful;
  // Radius grows (slowly) with n...
  EXPECT_GT(wasteful.radius(std::size_t{1} << 40),
            wasteful.radius(std::size_t{1} << 4));
  const FrozenOrderInvariantAlgorithm frozen(wasteful, /*n0=*/64);
  // ...but the frozen version's radius is a constant.
  EXPECT_EQ(frozen.radius(std::size_t{1} << 40), frozen.radius(64));

  SplitRng rng(23);
  for (std::size_t n : {10u, 200u, 3000u}) {
    Graph g = make_random_tree(n, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto output = run_ball_algorithm(frozen, g, input, ids);
    EXPECT_TRUE(is_correct_solution(problems::any_orientation(3), g, input,
                                    output))
        << "n=" << n;
  }
}

class ForestTransformTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestTransformTest, SolvesOnForests) {
  // Tree algorithm: orientation by ID order solves any_orientation on trees
  // in 1 round; the Lemma 3.3 transformer must solve it on forests.
  const std::size_t components = GetParam();
  SplitRng rng(7 * components);
  Graph forest = make_random_forest(36, components, 3, rng);
  const auto input = uniform_labeling(forest, 0);
  const auto ids = random_distinct_ids(forest, 3, rng);

  const OrientByIdOrder tree_algo;
  const auto problem = problems::any_orientation(3);
  const ForestTransformedAlgorithm forest_algo(tree_algo, problem);
  const auto output = run_ball_algorithm(forest_algo, forest, input, ids);
  const auto check = check_solution(problem, forest, input, output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(Components, ForestTransformTest,
                         ::testing::Values(1, 2, 4, 9, 18, 36));

TEST(ForestTransform, SmallComponentsSolvedCanonically) {
  // A forest of tiny components: every component fits in the small-component
  // branch and is solved by the canonical brute-force path. Use a problem
  // where correctness is easy to violate: proper 3-coloring.
  SplitRng rng(99);
  Graph forest = make_random_forest(12, 6, 2, rng);  // six 2-node trees
  const auto input = uniform_labeling(forest, 0);
  const auto ids = random_distinct_ids(forest, 3, rng);

  // Inner "tree algorithm" that would crash if ever invoked: small
  // components must never reach it.
  class Unreachable final : public BallAlgorithm {
   public:
    int radius(std::size_t) const override { return 1; }
    std::vector<Label> outputs(const LocalView&) const override {
      throw std::logic_error("tree algorithm invoked on small component");
    }
  };
  const auto problem = problems::coloring(3, 2);
  const Unreachable inner;
  const ForestTransformedAlgorithm forest_algo(inner, problem);
  const auto output = run_ball_algorithm(forest_algo, forest, input, ids);
  EXPECT_TRUE(is_correct_solution(problem, forest, input, output));
}

}  // namespace
}  // namespace lcl
