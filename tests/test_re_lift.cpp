// Direct unit tests for the Lemma 3.9 lift (`lift_solution`), previously
// covered only indirectly through the speedup engine.

#include "re/lift.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"

namespace lcl {
namespace {

SequenceLevel one_level(const NodeEdgeCheckableLcl& pi) {
  SequenceLevel level;
  level.psi = reduce_step(apply_r(pi));
  level.next = reduce_step(apply_rbar(level.psi.problem));
  return level;
}

/// 2-coloring on a path: the canonical hand-checkable lift. A solution of
/// `Rbar(R(pi))` on the 4-node path lifts to a proper 2-coloring: every
/// node writes one color on all its half-edges, adjacent nodes differ.
TEST(Lift, TwoColoringOnPathIsProper) {
  const auto pi = problems::two_coloring(2);
  const auto level = one_level(pi);

  const Graph g = make_path(4);  // includes two degree-1 endpoints
  const auto input = uniform_labeling(g, 0);
  const auto next_solution =
      brute_force_solve(level.next.problem, g, input);
  ASSERT_TRUE(next_solution.has_value());

  const auto lifted = lift_solution(pi, level, g, input, *next_solution);
  EXPECT_TRUE(check_solution(pi, g, input, lifted).ok());

  // Hand-check the structure, not just the checker verdict: per node a
  // single color, alternating along the path.
  std::vector<Label> color(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    color[v] = lifted[g.half_edge(v, 0)];
    for (int p = 1; p < g.degree(v); ++p) {
      EXPECT_EQ(lifted[g.half_edge(v, p)], color[v]) << "node " << v;
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_NE(color[u], color[v]) << "edge " << e;
  }
}

/// A single edge: both nodes have degree 1, the smallest graph the lemma
/// applies to.
TEST(Lift, DegreeOneOnlyGraph) {
  const auto pi = problems::two_coloring(2);
  const auto level = one_level(pi);

  const Graph g = make_path(2);
  const auto input = uniform_labeling(g, 0);
  const auto next_solution =
      brute_force_solve(level.next.problem, g, input);
  ASSERT_TRUE(next_solution.has_value());

  const auto lifted = lift_solution(pi, level, g, input, *next_solution);
  EXPECT_TRUE(check_solution(pi, g, input, lifted).ok());
  EXPECT_NE(lifted[0], lifted[1]);  // the two endpoints differ
}

/// "All nodes agree" problem: node configurations and edges only allow a
/// single repeated label per component - the lift must handle repeated
/// labels in node configurations and produce a uniform labeling.
TEST(Lift, RepeatedLabelsLiftUniformly) {
  NodeEdgeCheckableLcl::Builder builder("agree", Alphabet({"-"}),
                                        Alphabet({"a", "b"}), 2);
  for (Label l = 0; l < 2; ++l) {
    builder.allow_node({l});
    builder.allow_node({l, l});
    builder.allow_edge(l, l);
    builder.allow_output_for_input(0, l);
  }
  const auto pi = builder.build();
  const auto level = one_level(pi);

  const Graph g = make_path(5);
  const auto input = uniform_labeling(g, 0);
  const auto next_solution =
      brute_force_solve(level.next.problem, g, input);
  ASSERT_TRUE(next_solution.has_value());

  const auto lifted = lift_solution(pi, level, g, input, *next_solution);
  EXPECT_TRUE(check_solution(pi, g, input, lifted).ok());
  for (const auto l : lifted) {
    EXPECT_EQ(l, lifted[0]);  // one connected component => one label
  }
}

TEST(Lift, RejectsSizeMismatch) {
  const auto pi = problems::two_coloring(2);
  const auto level = one_level(pi);
  const Graph g = make_path(3);
  EXPECT_THROW(lift_solution(pi, level, g, uniform_labeling(g, 0),
                             HalfEdgeLabeling{0}),
               std::invalid_argument);
}

/// Hand-built level whose edge meaning admits no psi-compatible pair: the
/// step-1 choice of Lemma 3.9 must fail loudly, not fabricate labels.
TEST(Lift, ThrowsWhenEdgeChoiceImpossible) {
  NodeEdgeCheckableLcl::Builder pi_b("pi", Alphabet({"-"}),
                                     Alphabet({"a", "b"}), 1);
  pi_b.allow_node({0});
  pi_b.allow_node({1});
  pi_b.allow_edge(0, 1);
  pi_b.allow_output_for_input(0, 0);
  pi_b.allow_output_for_input(0, 1);
  const auto pi = pi_b.build();

  // psi: edge constraint only {A, B}.
  NodeEdgeCheckableLcl::Builder psi_b("psi", Alphabet({"-"}),
                                      Alphabet({"A", "B"}), 1);
  psi_b.allow_node({0});
  psi_b.allow_node({1});
  psi_b.allow_edge(0, 1);
  psi_b.allow_output_for_input(0, 0);
  psi_b.allow_output_for_input(0, 1);

  // next: single label X whose meaning is {A} alone - the edge (X, X) only
  // offers the pair (A, A), which psi forbids.
  NodeEdgeCheckableLcl::Builder next_b("next", Alphabet({"-"}),
                                       Alphabet({"X"}), 1);
  next_b.allow_node({0});
  next_b.allow_edge(0, 0);
  next_b.allow_output_for_input(0, 0);

  SequenceLevel level;
  level.psi.problem = psi_b.build();
  level.psi.meaning = {LabelSet(2, {0}), LabelSet(2, {1})};
  level.next.problem = next_b.build();
  level.next.meaning = {LabelSet(2, {0})};

  const Graph g = make_path(2);
  const HalfEdgeLabeling solution{0, 0};
  EXPECT_THROW(
      lift_solution(pi, level, g, uniform_labeling(g, 0), solution),
      std::logic_error);
}

/// Hand-built level where the edge choice succeeds but no selection from
/// the psi meanings satisfies pi's node constraint: the step-2 choice must
/// throw.
TEST(Lift, ThrowsWhenNodeChoiceImpossible) {
  // pi only allows the label "b" at degree-1 nodes...
  NodeEdgeCheckableLcl::Builder pi_b("pi", Alphabet({"-"}),
                                     Alphabet({"a", "b"}), 1);
  pi_b.allow_node({1});
  pi_b.allow_edge(0, 0);
  pi_b.allow_edge(1, 1);
  pi_b.allow_output_for_input(0, 0);
  pi_b.allow_output_for_input(0, 1);
  const auto pi = pi_b.build();

  NodeEdgeCheckableLcl::Builder psi_b("psi", Alphabet({"-"}),
                                      Alphabet({"A"}), 1);
  psi_b.allow_node({0});
  psi_b.allow_edge(0, 0);
  psi_b.allow_output_for_input(0, 0);

  NodeEdgeCheckableLcl::Builder next_b("next", Alphabet({"-"}),
                                       Alphabet({"X"}), 1);
  next_b.allow_node({0});
  next_b.allow_edge(0, 0);
  next_b.allow_output_for_input(0, 0);

  SequenceLevel level;
  level.psi.problem = psi_b.build();
  level.psi.meaning = {LabelSet(2, {0})};  // ...but A only means "a".
  level.next.problem = next_b.build();
  level.next.meaning = {LabelSet(1, {0})};

  const Graph g = make_path(2);
  const HalfEdgeLabeling solution{0, 0};
  EXPECT_THROW(
      lift_solution(pi, level, g, uniform_labeling(g, 0), solution),
      std::logic_error);
}

}  // namespace
}  // namespace lcl
