#include "util/label_mask.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/label_set.hpp"

namespace lcl {
namespace {

TEST(LabelMask, BasicMembership) {
  LabelMask m(5);
  EXPECT_EQ(m.universe(), 5u);
  EXPECT_TRUE(m.empty());
  m.insert(0);
  m.insert(3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(0));
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(3));
  EXPECT_EQ(m.word(), 0b01001u);
  m.erase(0);
  EXPECT_EQ(m.to_vector(), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(m.min(), 3u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_THROW(m.min(), std::logic_error);
}

TEST(LabelMask, RangeChecks) {
  LabelMask m(3);
  EXPECT_THROW(m.insert(3), std::out_of_range);
  EXPECT_THROW(m.contains(7), std::out_of_range);
  EXPECT_THROW(m.erase(100), std::out_of_range);
  EXPECT_THROW(LabelMask(3, 0b1000), std::out_of_range);
  EXPECT_THROW(LabelMask(65), std::invalid_argument);
  EXPECT_THROW(LabelMask::full(2).is_subset_of(LabelMask::full(3)),
               std::invalid_argument);
}

TEST(LabelMask, FullAndSingletonAndComplement) {
  EXPECT_EQ(LabelMask::full(6).word(), 0b111111u);
  EXPECT_EQ(LabelMask::full(0).word(), 0u);
  EXPECT_EQ(LabelMask::singleton(6, 4).word(), 0b010000u);
  EXPECT_EQ(LabelMask(6, 0b010101).complement().word(), 0b101010u);
  EXPECT_EQ(LabelMask::universe_word(64), ~std::uint64_t{0});
  EXPECT_EQ(LabelMask::universe_word(0), 0u);
}

// The dense representation must agree with `LabelSet` on *every* operation
// over *every* pair of subsets, for all universes k <= 6. That is
// sum_k (2^k)^2 = 5461 pairs - small enough to brute-force, and the brute
// force is exactly the interchangeability contract the RE kernels rely on.
TEST(LabelMask, ExhaustiveCrossCheckAgainstLabelSetUpToK6) {
  for (std::size_t k = 0; k <= 6; ++k) {
    const std::uint64_t count = std::uint64_t{1} << k;
    for (std::uint64_t a = 0; a < count; ++a) {
      const LabelMask ma(k, a);
      const LabelSet sa = ma.to_label_set();
      ASSERT_EQ(LabelMask::from_label_set(sa), ma);
      ASSERT_EQ(sa.size(), ma.size());
      ASSERT_EQ(sa.empty(), ma.empty());
      ASSERT_EQ(sa.to_vector(), ma.to_vector());
      ASSERT_EQ(sa.to_string(), ma.to_string());
      ASSERT_EQ(sa.hash(), ma.hash()) << "k=" << k << " a=" << a;
      for (std::uint32_t l = 0; l < k; ++l) {
        ASSERT_EQ(sa.contains(l), ma.contains(l));
      }
      for (std::uint64_t b = 0; b < count; ++b) {
        const LabelMask mb(k, b);
        const LabelSet sb = mb.to_label_set();
        ASSERT_EQ(sa.is_subset_of(sb), ma.is_subset_of(mb));
        ASSERT_EQ(sa.intersects(sb), ma.intersects(mb));
        ASSERT_EQ(sa.union_with(sb), ma.union_with(mb).to_label_set());
        ASSERT_EQ(sa.intersect_with(sb), ma.intersect_with(mb).to_label_set());
        ASSERT_EQ(sa.minus(sb), ma.minus(mb).to_label_set());
        ASSERT_EQ(sa == sb, ma == mb);
        ASSERT_EQ(sa < sb, ma < mb) << "k=" << k << " a=" << a << " b=" << b;
      }
    }
  }
}

// The subset walk must visit exactly the 2^popcount(mask) - 1 non-empty
// submasks, each once, in strictly decreasing order. The k=6 full word is
// the 2^6 - 1 boundary named in the kernel docs.
TEST(LabelMask, SubsetWalkVisitsEveryNonemptySubmaskOnce) {
  const std::uint64_t masks[] = {0b111111, 0b101101, 0b1, 0b100000, 0};
  for (const std::uint64_t mask : masks) {
    std::vector<std::uint64_t> visited;
    for_each_nonempty_submask(mask, [&](std::uint64_t sub) {
      visited.push_back(sub);
    });
    const int bits = std::popcount(mask);
    ASSERT_EQ(visited.size(), (std::uint64_t{1} << bits) - 1) << mask;
    std::set<std::uint64_t> unique(visited.begin(), visited.end());
    ASSERT_EQ(unique.size(), visited.size());
    for (std::size_t i = 0; i + 1 < visited.size(); ++i) {
      ASSERT_GT(visited[i], visited[i + 1]);  // strictly decreasing
    }
    for (const std::uint64_t sub : visited) {
      ASSERT_NE(sub, 0u);
      ASSERT_EQ(sub & ~mask, 0u);  // genuinely a submask
    }
  }
}

// k=64 exercises the full-word edge case, where `(1 << 64)` would be UB:
// universe_word must saturate to all-ones and complement/full must agree.
TEST(LabelMask, FullWordUniverse) {
  LabelMask m = LabelMask::full(64);
  EXPECT_EQ(m.size(), 64u);
  EXPECT_EQ(m.word(), ~std::uint64_t{0});
  EXPECT_TRUE(m.contains(63));
  EXPECT_TRUE(m.complement().empty());
  EXPECT_EQ(LabelMask(64).complement(), m);
  m.erase(63);
  EXPECT_EQ(m.size(), 63u);
  EXPECT_EQ(m.complement(), LabelMask::singleton(64, 63));

  // Round-trip and hash parity hold at the boundary too.
  const LabelSet s = m.to_label_set();
  EXPECT_EQ(s.size(), 63u);
  EXPECT_EQ(LabelMask::from_label_set(s), m);
  EXPECT_EQ(s.hash(), m.hash());
  EXPECT_THROW(m.insert(64), std::out_of_range);
}

TEST(LabelMask, DefaultIsEmptyUniverse) {
  const LabelMask m;
  EXPECT_EQ(m.universe(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.hash(), LabelSet().hash());
  EXPECT_EQ(m, LabelMask(0, 0));
}

}  // namespace
}  // namespace lcl
