#include "batch/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lcl {
namespace {

using batch::Pool;

/// A hand-rolled latch (the toolchain's <latch> is avoided so the tests
/// match the library's own C++20-subset diet).
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this]() { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(BatchPool, RunsTasksAndReturnsValues) {
  Pool pool(Pool::Options{4});
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  int expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(BatchPool, DefaultsToHardwareConcurrency) {
  Pool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(BatchPool, TaskExceptionLandsInTheFutureOnly) {
  Pool pool(Pool::Options{2});
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task boom"); });
  auto fine = pool.submit([]() { return 7; });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(fine.get(), 7);
  auto after = pool.submit([]() { return 8; });
  EXPECT_EQ(after.get(), 8);
}

TEST(BatchPool, WaitIdleDrainsTheQueue) {
  Pool pool(Pool::Options{3});
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done]() { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(BatchPool, CancelDropsQueuedTasksWithBrokenPromises) {
  Pool pool(Pool::Options{1});
  Gate release;
  std::atomic<bool> blocker_ran{false};
  // Occupy the single worker so everything else stays queued.
  auto blocker = pool.submit([&]() {
    blocker_ran.store(true);
    release.wait();
  });
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 5; ++i) {
    queued.push_back(pool.submit([i]() { return i; }));
  }
  // Wait until the blocker actually holds the worker.
  while (!blocker_ran.load()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(pool.cancel_requested());
  pool.request_cancel();
  EXPECT_TRUE(pool.cancel_requested());
  EXPECT_EQ(pool.tasks_dropped(), 5u);
  release.open();
  blocker.get();  // the running task was never interrupted
  for (auto& f : queued) {
    try {
      f.get();
      FAIL() << "dropped task's future did not throw";
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
    }
  }
  // The pool still accepts and runs work after a cancellation sweep.
  EXPECT_EQ(pool.submit([]() { return 42; }).get(), 42);
}

TEST(BatchPool, ManyThreadsManyTasksStress) {
  Pool pool(Pool::Options{8});
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  constexpr int kTasks = 2000;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(
        pool.submit([&sum, i]() { sum.fetch_add(static_cast<std::uint64_t>(i)); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(BatchPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    Pool pool(Pool::Options{2});
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done]() { done.fetch_add(1); });
    }
    // No explicit wait: ~Pool must run everything that was submitted.
  }
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace lcl
