#include "grid/torus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "grid/algorithms.hpp"
#include "local/global_algorithms.hpp"
#include "local/sync_engine.hpp"

namespace lcl {
namespace {

TEST(OrientedTorus, StructureBasics) {
  const OrientedTorus torus({4, 5});
  EXPECT_EQ(torus.node_count(), 20u);
  EXPECT_EQ(torus.dimensions(), 2);
  EXPECT_EQ(torus.extent(0), 4u);
  EXPECT_EQ(torus.extent(1), 5u);
  EXPECT_EQ(torus.graph().edge_count(), 40u);  // d * n edges
  for (NodeId v = 0; v < torus.node_count(); ++v) {
    EXPECT_EQ(torus.graph().degree(v), 4);
  }
  EXPECT_THROW(OrientedTorus({2, 4}), std::invalid_argument);
  EXPECT_THROW(OrientedTorus({}), std::invalid_argument);
  EXPECT_THROW(torus.extent(2), std::out_of_range);
}

TEST(OrientedTorus, CoordinateRoundTrip) {
  const OrientedTorus torus({3, 4, 5});
  for (NodeId v = 0; v < torus.node_count(); ++v) {
    EXPECT_EQ(torus.node_at(torus.coords_of(v)), v);
  }
  EXPECT_THROW(torus.node_at({1, 2}), std::invalid_argument);
  EXPECT_THROW(torus.node_at({3, 0, 0}), std::out_of_range);
}

TEST(OrientedTorus, OrientationInputIsConsistent) {
  const OrientedTorus torus({3, 4});
  const auto input = torus.orientation_input();
  const Graph& g = torus.graph();
  // Every edge pairs k+ with k-; every node carries each label exactly once.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Label a = input[2 * e];
    const Label b = input[2 * e + 1];
    EXPECT_EQ(a / 2, b / 2);  // same dimension
    EXPECT_NE(a % 2, b % 2);  // opposite directions
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::set<Label> seen;
    for (int p = 0; p < g.degree(v); ++p) {
      seen.insert(input[g.half_edge(v, p)]);
    }
    EXPECT_EQ(seen.size(), 4u);  // 0+, 0-, 1+, 1-
  }
  // Following forward-0 from a node walks its dimension-0 cycle.
  NodeId v = torus.node_at({0, 0});
  for (int step = 0; step < 3; ++step) {
    int fp = -1;
    for (int p = 0; p < g.degree(v); ++p) {
      if (input[g.half_edge(v, p)] == OrientedTorus::forward_label(0)) fp = p;
    }
    ASSERT_NE(fp, -1);
    v = g.neighbor(v, fp);
  }
  EXPECT_EQ(v, torus.node_at({0, 0}));  // wrapped around extent 3
}

TEST(ProdLocal, IdsSharedExactlyOnLines) {
  const OrientedTorus torus({3, 4});
  SplitRng rng(3);
  const auto prod = random_prod_ids(torus, rng);
  for (NodeId u = 0; u < torus.node_count(); ++u) {
    for (NodeId v = 0; v < torus.node_count(); ++v) {
      const auto cu = torus.coords_of(u);
      const auto cv = torus.coords_of(v);
      const auto tu = prod.tuple_for(torus, u);
      const auto tv = prod.tuple_for(torus, v);
      for (std::size_t k = 0; k < cu.size(); ++k) {
        EXPECT_EQ(cu[k] == cv[k], tu[k] == tv[k]);
      }
    }
  }
}

TEST(ProdLocal, CombinedIdsAreGloballyUnique) {
  const OrientedTorus torus({4, 3, 3});
  SplitRng rng(9);
  const auto prod = random_prod_ids(torus, rng);
  const auto ids = combined_ids(torus, prod);
  std::set<std::uint64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), torus.node_count());
}

TEST(OrientationCopy, ZeroRoundsAndCorrect) {
  const OrientedTorus torus({3, 5});
  const auto input = torus.orientation_input();
  const auto problem = orientation_copy_problem(2);
  IdAssignment ids(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) ids[v] = v + 1;

  const auto result =
      run_synchronous(OrientationEcho{}, torus.graph(), input, ids, 1);
  EXPECT_EQ(result.rounds, 0);
  const auto check =
      check_solution(problem, torus.graph(), input, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

class GridColoringTest
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(GridColoringTest, ProperColoringInLogStarRounds) {
  const OrientedTorus torus(GetParam());
  const int d = torus.dimensions();
  SplitRng rng(torus.node_count());
  const auto prod = random_prod_ids(torus, rng);
  const auto aux = prod.all_tuples(torus);
  const auto ids = combined_ids(torus, prod);
  const auto input = torus.orientation_input();

  const GridColoring algo(d, prod_id_range(prod));
  const auto result = run_synchronous(algo, torus.graph(), input, ids, 1, 0,
                                      1'000'000, &aux);
  EXPECT_EQ(result.rounds, algo.total_rounds());

  const auto problem = problems::coloring(algo.colors(), 2 * d);
  const auto dummy = uniform_labeling(torus.graph(), 0);
  const auto check =
      check_solution(problem, torus.graph(), dummy, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridColoringTest,
    ::testing::Values(std::vector<std::size_t>{7},
                      std::vector<std::size_t>{64},
                      std::vector<std::size_t>{3, 3},
                      std::vector<std::size_t>{5, 12},
                      std::vector<std::size_t>{16, 16},
                      std::vector<std::size_t>{3, 4, 5},
                      std::vector<std::size_t>{4, 4, 4}));

TEST(GridColoring, RejectsMissingAux) {
  const OrientedTorus torus({4, 4});
  const auto input = torus.orientation_input();
  IdAssignment ids(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) ids[v] = v + 1;
  const GridColoring algo(2, 1u << 20);
  EXPECT_THROW(run_synchronous(algo, torus.graph(), input, ids, 1),
               std::invalid_argument);
}

TEST(GridCheckerboard, GlobalTwoColoringOnEvenTorus) {
  // 2-coloring an even torus needs Theta(n^(1/d)) rounds; the BFS
  // wave algorithm achieves it and the round count scales with the side
  // length, not with n.
  const OrientedTorus small({4, 4});
  const OrientedTorus large({16, 16});
  for (const OrientedTorus* torus : {&small, &large}) {
    IdAssignment ids(torus->node_count());
    for (NodeId v = 0; v < torus->node_count(); ++v) ids[v] = v + 1;
    const auto dummy = uniform_labeling(torus->graph(), 0);
    const auto result =
        run_synchronous(BfsTwoColoring{}, torus->graph(), dummy, ids, 1);
    const auto problem = problems::two_coloring(4);
    EXPECT_TRUE(
        is_correct_solution(problem, torus->graph(), dummy, result.output));
    EXPECT_TRUE(result.quiesced);
    // Eccentricity of the root ~ d * side / 2.
    EXPECT_LE(result.rounds,
              static_cast<int>(torus->extent(0) + torus->extent(1)));
  }
}

}  // namespace
}  // namespace lcl
