// Experiment F1-BR: Figure 1, bottom right - the VOLUME model landscape:
// O(1), Theta(log* n), Theta(n^{1/k}) (k=1 shown), Theta(n); and the
// Theorem 1.3 gap (nothing between omega(1) and o(log* n)), demonstrated
// by the Theorem 2.11 freezing pipeline in bench_volume_orderinv.
// Measured quantity: max probes over all queries.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/cole_vishkin.hpp"
#include "volume/algorithms.hpp"

namespace lcl {
namespace {

void BM_VolumeO1_Constant(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = make_cycle(n);
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  VolumeRunResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_volume_algorithm(VolumeConstant{}, g, input, ids);
    lcl::bench::keep(result.max_probes);
  }
  if (!is_correct_solution(problems::trivial(2), g, input, result.output)) {
    state.SkipWithError("invalid output");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["max_probes"] = static_cast<double>(result.max_probes);
}
BENCHMARK(BM_VolumeO1_Constant)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_VolumeO1_Orientation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  VolumeRunResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_volume_algorithm(VolumeOrientByIds{}, g, input, ids);
    lcl::bench::keep(result.max_probes);
  }
  if (!is_correct_solution(problems::any_orientation(3), g, input,
                           result.output)) {
    state.SkipWithError("invalid orientation");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["max_probes"] = static_cast<double>(result.max_probes);
}
BENCHMARK(BM_VolumeO1_Orientation)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_VolumeLogStar_ColeVishkin(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = make_cycle(n);
  SplitRng rng(n + 1);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = chain_orientation_input(g, true);
  const VolumeColeVishkin algo(bench::id_range_for(ids));
  VolumeRunResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_volume_algorithm(algo, g, input, ids);
    lcl::bench::keep(result.max_probes);
  }
  const auto dummy = uniform_labeling(g, 0);
  if (!is_correct_solution(problems::coloring(3, 2), g, dummy,
                           result.output)) {
    state.SkipWithError("invalid coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["max_probes"] = static_cast<double>(result.max_probes);
}
BENCHMARK(BM_VolumeLogStar_ColeVishkin)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 15);

void BM_VolumeGlobal_TwoColoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = make_path(n);
  SplitRng rng(n + 2);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = chain_orientation_input(g, false);
  VolumeRunResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_volume_algorithm(VolumeTwoColoring{}, g, input, ids);
    lcl::bench::keep(result.max_probes);
  }
  const auto dummy = uniform_labeling(g, 0);
  if (!is_correct_solution(problems::two_coloring(2), g, dummy,
                           result.output)) {
    state.SkipWithError("invalid 2-coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["max_probes"] = static_cast<double>(result.max_probes);
}
BENCHMARK(BM_VolumeGlobal_TwoColoring)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
