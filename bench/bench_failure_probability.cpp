// Experiment FAIL-P: the empirical face of Definition 2.4 and the premise
// of Theorem 3.4. The theorem consumes "a T(n)-round randomized algorithm
// with local failure probability p" and bounds the failure growth along the
// round-elimination sequence. This bench produces the (T, p) trade-off
// curve for the truncated randomized (Delta+1)-coloring: local failure
// probability vs round cap, measured over many independent runs. Each
// halving of p costs O(1) extra rounds (p ~ exp(-Theta(T))), matching the
// O(log n) whp round bound of the uncapped algorithm.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/failure.hpp"

namespace lcl {
namespace {

void BM_LocalFailureVsRoundCap(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  const std::size_t n = 256;
  SplitRng rng(3);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto problem = problems::coloring(4, 3);
  const CappedRandomColoring algo(3, cap);

  LocalFailureEstimate estimate;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    estimate = estimate_local_failure(algo, problem, g, input, ids,
                                      /*trials=*/200, /*seed_base=*/1000);
    lcl::bench::keep(estimate.local_failure);
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["round_cap"] = cap;
  state.counters["local_failure_p"] = estimate.local_failure;
  state.counters["global_failure"] = estimate.global_failure;
}
BENCHMARK(BM_LocalFailureVsRoundCap)->DenseRange(0, 14, 2);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
