// Experiment F1-BL: Figure 1, bottom left - on general constant-degree
// graphs there are LCL complexities strictly between Theta(log log* n) and
// Theta(log* n) ([BHKLOS18]). The witness construction solves a
// Theta(log* n) problem on a path that carries a shortcutting structure:
// the radius-t ball in the full graph contains Theta(2^t) consecutive
// spine nodes, so the *radius* needed to run Cole-Vishkin on the spine
// drops to ~ log(log* n) while the *volume* (nodes seen) stays
// Theta(log* n).
//
// The bench measures, for each n: the Cole-Vishkin window size
// w = Theta(log* id_range); the radius needed to cover w consecutive spine
// nodes (a) on the bare path (= w) and (b) on the shortcut graph
// (~ log2 w); and the ball volume at that radius in the shortcut graph
// (>= w: no radius saving reduces the volume). The paper's point - and the
// reason Theorem 1.3's VOLUME gap is clean while LOCAL is not - is visible
// as radius_shortcut << radius_path while volume stays ~ w.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/cole_vishkin.hpp"
#include "local/sync_engine.hpp"

namespace lcl {
namespace {

/// Radius around `center` needed until the ball contains `want` spine nodes
/// (ids < spine_n), plus the ball size at that radius.
std::pair<int, std::size_t> radius_to_cover_spine(const Graph& g,
                                                  NodeId center,
                                                  std::size_t spine_n,
                                                  std::size_t want) {
  const auto dist = g.distances_from(center);
  // Collect (distance, is_spine) and sweep radii outward.
  int radius = 0;
  std::size_t spine_seen = 0;
  std::size_t ball = 0;
  for (int r = 0;; ++r) {
    bool any = false;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dist[v] == r) {
        any = true;
        ++ball;
        if (v < spine_n) ++spine_seen;
      }
    }
    radius = r;
    if (spine_seen >= want) break;
    if (!any) break;  // exhausted the graph
  }
  return {radius, ball};
}

void BM_ShortcutRadiusVsVolume(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph shortcut = make_shortcut_path(n);
  Graph path = make_path(n);
  SplitRng rng(n);

  // Window the path Cole-Vishkin needs around each node.
  const ColeVishkin cv(n * n * n);
  const std::size_t w =
      static_cast<std::size_t>(cv.shrink_rounds()) + 7;

  // Measure at a bundle of sample spine nodes (middle region, away from the
  // path ends).
  int radius_shortcut = 0, radius_path = 0;
  std::size_t volume_shortcut = 0;
  for (std::size_t i = 1; i <= 5; ++i) {
    const NodeId center = static_cast<NodeId>(n * i / 6);
    const auto [rs, vs] = radius_to_cover_spine(shortcut, center, n, w);
    const auto [rp, vp] = radius_to_cover_spine(path, center, n, w);
    (void)vp;
    radius_shortcut = std::max(radius_shortcut, rs);
    radius_path = std::max(radius_path, rp);
    volume_shortcut = std::max(volume_shortcut, vs);
  }

  // Sanity: the spine problem itself is solvable in Theta(log* n) - run
  // Cole-Vishkin on the spine and verify.
  const auto ids = random_distinct_ids(path, 3, rng);
  const auto input = chain_orientation_input(path, false);
  const ColeVishkin algo(bench::id_range_for(ids));
  const auto result = run_synchronous(algo, path, input, ids, 1);
  const auto dummy = uniform_labeling(path, 0);
  if (!is_correct_solution(problems::coloring(3, 2), path, dummy,
                           result.output)) {
    state.SkipWithError("spine coloring failed");
  }

  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    lcl::bench::keep(radius_shortcut);
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["window_w"] = static_cast<double>(w);
  state.counters["radius_path"] = radius_path;
  state.counters["radius_shortcut"] = radius_shortcut;
  state.counters["volume_shortcut"] = static_cast<double>(volume_shortcut);
  state.counters["log2_w"] = static_cast<double>(
      w >= 1 ? floor_log2(static_cast<std::uint64_t>(w)) : 0);
}
BENCHMARK(BM_ShortcutRadiusVsVolume)->RangeMultiplier(4)->Range(64, 1 << 14);

void BM_ShortcutRadiusByWindow(benchmark::State& state) {
  // The structural mechanism behind the intermediate complexities: the
  // radius needed to see w consecutive spine nodes is Theta(w) on the bare
  // path but Theta(log w) through the shortcut tree - while the volume
  // stays >= w in both. (In the [BHKLOS18] problems w = Theta(log* n),
  // turning Theta(log* n) radius into Theta(log log* n) radius.) Real log*
  // values are tiny, so this sweep varies w directly to expose the scaling.
  const std::size_t w = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 4 * w + 64;
  Graph shortcut = make_shortcut_path(n);
  Graph path = make_path(n);
  const NodeId center = static_cast<NodeId>(n / 2);
  const auto [rs, vs] = radius_to_cover_spine(shortcut, center, n, w);
  const auto [rp, vp] = radius_to_cover_spine(path, center, n, w);
  (void)vp;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    lcl::bench::keep(rs);
  }
  obs_counters.report(state);
  state.counters["window_w"] = static_cast<double>(w);
  state.counters["radius_path"] = rp;
  state.counters["radius_shortcut"] = rs;
  state.counters["volume_shortcut"] = static_cast<double>(vs);
  state.counters["log2_w"] = static_cast<double>(
      floor_log2(static_cast<std::uint64_t>(w)));
}
BENCHMARK(BM_ShortcutRadiusByWindow)->RangeMultiplier(4)->Range(8, 2048);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
