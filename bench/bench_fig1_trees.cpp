// Experiment F1-TL: Figure 1, top left - the complexity landscape of LCLs
// on trees. One series per (non-empty) complexity class, reporting measured
// locality (rounds) against n, plus reference scales:
//   O(1)              -> orientation by ID comparison (radius 1);
//   Theta(log* n)     -> Linial (Delta+1)-coloring (measured rounds flat in
//                        n up to the log* schedule);
//   Theta(log n) det  -> sinkless orientation via the boundary-distance
//                        wave, measured on complete Delta-regular trees;
//   Theta(n^{1/k}), k=1 -> proper 2-coloring via the global BFS wave.
// The ω(1)-o(log* n) *gap* itself (Theorem 1.1) is exercised by
// bench_gap_collapse.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/global_algorithms.hpp"
#include "local/linial.hpp"
#include "local/order_invariant.hpp"
#include "local/rand_coloring.hpp"
#include "local/rooted_tree.hpp"
#include "local/sinkless.hpp"
#include "local/sync_engine.hpp"

namespace lcl {
namespace {

void BM_ClassO1_OrientByIds(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const OrientByIdOrder algo;
  HalfEdgeLabeling output;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    output = run_ball_algorithm(algo, g, input, ids);
    lcl::bench::keep(output);
  }
  if (!is_correct_solution(problems::any_orientation(3), g, input, output)) {
    state.SkipWithError("invalid orientation");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["rounds"] = algo.radius(n);
}
BENCHMARK(BM_ClassO1_OrientByIds)->RangeMultiplier(4)->Range(64, 1 << 14);

void BM_ClassLogStar_LinialColoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n + 1);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const LinialColoring algo(3, bench::id_range_for(ids));
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, g, input, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(problems::coloring(4, 3), g, input,
                           result.output)) {
    state.SkipWithError("invalid coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
  state.counters["log_star_stage_rounds"] = algo.schedule_rounds();
}
BENCHMARK(BM_ClassLogStar_LinialColoring)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 14);

void BM_ClassLogStar_RootedThreeColoring(benchmark::State& state) {
  // With a root orientation, 3 colors suffice for ANY degree bound, still
  // in Theta(log* n) rounds - the rooted-tree setting of [BBOSST21]
  // discussed in Section 1.1.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n + 5);
  Graph g = make_random_tree(n, 6, rng);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = root_tree_input(g, 0);
  const RootedTreeColoring algo(bench::id_range_for(ids));
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, g, input, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  const auto dummy = uniform_labeling(g, 0);
  if (!is_correct_solution(problems::coloring(3, 6), g, dummy,
                           result.output)) {
    state.SkipWithError("invalid rooted coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
}
BENCHMARK(BM_ClassLogStar_RootedThreeColoring)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 14);

void BM_ClassLogDet_SinklessOrientation(benchmark::State& state) {
  // Complete Delta-regular trees: the wave's travel distance ~ depth ~
  // log n, showing the Theta(log n) deterministic class.
  const int depth = static_cast<int>(state.range(0));
  Graph g = make_regular_tree(3, depth);
  SplitRng rng(depth);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const SinklessOrientationTree algo(3);
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, g, input, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(problems::sinkless_orientation(3), g, input,
                           result.output)) {
    state.SkipWithError("sink found");
  }
  bench::report_scales(state, g.node_count());
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
  state.counters["depth"] = depth;
}
BENCHMARK(BM_ClassLogDet_SinklessOrientation)->DenseRange(3, 13, 2);

void BM_ClassGlobal_TwoColoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = make_path(n);
  SplitRng rng(n + 2);
  const auto input = uniform_labeling(g, 0);
  const auto ids = shuffled_sequential_ids(g, rng);
  const BfsTwoColoring algo;
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, g, input, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(problems::two_coloring(2), g, input,
                           result.output)) {
    state.SkipWithError("invalid 2-coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
}
BENCHMARK(BM_ClassGlobal_TwoColoring)->RangeMultiplier(4)->Range(64, 4096);

void BM_Randomized_GreedyColoring(benchmark::State& state) {
  // Randomized (Delta+1)-coloring: O(log n) rounds whp - the kind of
  // randomized algorithm the Theorem 3.4 pipeline consumes.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n + 3);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);
  const RandomGreedyColoring algo(3);
  SyncResult result;
  std::uint64_t seed = 1;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, g, input, ids, seed++);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(problems::coloring(4, 3), g, input,
                           result.output)) {
    state.SkipWithError("invalid coloring");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
}
BENCHMARK(BM_Randomized_GreedyColoring)->RangeMultiplier(4)->Range(64, 1 << 14);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
