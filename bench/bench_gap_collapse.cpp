// Experiment GAP-RE: the Theorem 3.10/3.11 machinery. For each problem,
// drive the round-elimination sequence pi, f(pi), f^2(pi), ... with
// f = Rbar o R and test 0-round solvability at every step:
//   - O(1)-class problems collapse (zero_round_step >= 0), and the
//     synthesized constant-round algorithm is executed and verified;
//   - Theta(log* n)-class problems never collapse (the gap theorem says
//     collapse <=> O(1)); the per-step label counts grow;
//   - sinkless orientation reaches a round-elimination *fixed point*, the
//     classic Omega(log n) hardness certificate.
// Counters: zero_round_step (-1 = none), steps applied, labels of the last
// derived problem, fixed_point / budget_exhausted flags.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "re/engine.hpp"

namespace lcl {
namespace {

void run_gap(benchmark::State& state, const NodeEdgeCheckableLcl& problem,
             int max_steps) {
  SpeedupEngine::Outcome outcome;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    SpeedupEngine engine(problem);
    SpeedupEngine::Options options;
    options.max_steps = max_steps;
    options.limits.max_labels = 1u << 14;
    options.limits.max_configs = 4'000'000;
    outcome = engine.run(options);
    lcl::bench::keep(outcome.zero_round_step);

    if (outcome.zero_round_step >= 0) {
      // Verify the synthesized constant-round algorithm on a forest.
      const auto algorithm = engine.synthesize();
      SplitRng rng(7);
      Graph forest = make_random_forest(40, 4, problem.max_degree(), rng);
      const auto input = uniform_labeling(forest, 0);
      const auto ids = random_distinct_ids(forest, 3, rng);
      const auto output = run_ball_algorithm(*algorithm, forest, input, ids);
      if (!is_correct_solution(problem, forest, input, output)) {
        state.SkipWithError("synthesized algorithm produced a bad solution");
        return;
      }
    }
  }
  obs_counters.report(state);
  state.counters["zero_round_step"] = outcome.zero_round_step;
  state.counters["steps_applied"] =
      static_cast<double>(outcome.steps.size());
  state.counters["fixed_point"] = outcome.fixed_point ? 1 : 0;
  state.counters["budget_exhausted"] = outcome.budget_exhausted ? 1 : 0;
  if (!outcome.steps.empty()) {
    state.counters["last_labels"] =
        static_cast<double>(outcome.steps.back().labels_next);
  }
}

void BM_Gap_Trivial(benchmark::State& state) {
  run_gap(state, problems::trivial(3), 3);
}
BENCHMARK(BM_Gap_Trivial);

void BM_Gap_AnyOrientation_D2(benchmark::State& state) {
  run_gap(state, problems::any_orientation(2), 3);
}
BENCHMARK(BM_Gap_AnyOrientation_D2);

void BM_Gap_AnyOrientation_D3(benchmark::State& state) {
  run_gap(state, problems::any_orientation(3), 3);
}
BENCHMARK(BM_Gap_AnyOrientation_D3);

void BM_Gap_ThreeColoring(benchmark::State& state) {
  run_gap(state, problems::coloring(3, 2), 3);
}
BENCHMARK(BM_Gap_ThreeColoring);

void BM_Gap_TwoColoring(benchmark::State& state) {
  run_gap(state, problems::two_coloring(2), 3);
}
BENCHMARK(BM_Gap_TwoColoring);

void BM_Gap_SinklessOrientation(benchmark::State& state) {
  run_gap(state, problems::sinkless_orientation(3), 6);
}
BENCHMARK(BM_Gap_SinklessOrientation);

void BM_Gap_Mis(benchmark::State& state) {
  run_gap(state, problems::mis(2), 2);
}
BENCHMARK(BM_Gap_Mis);

void BM_Gap_WeakColoring(benchmark::State& state) {
  run_gap(state, problems::weak_coloring(2, 3), 2);
}
BENCHMARK(BM_Gap_WeakColoring);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
