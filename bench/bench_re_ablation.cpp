// Experiment RE-ABL: ablation of the design choice called out after
// Definition 3.1 - the paper's operators do NOT remove non-maximal
// configurations; our `reduce()` (trim + merge + dominated-label drop) is
// the sound practical counterpart. This bench applies one f = Rbar o R step
// with and without reduction and reports the label/configuration growth and
// the wall time, quantifying how quickly the faithful sequence becomes
// intractable (the doubly-exponential blow-up behind Theorem 3.4's S).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/problems.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"

namespace lcl {
namespace {

void run_ablation(benchmark::State& state,
                  const NodeEdgeCheckableLcl& problem, bool with_reduce) {
  ReLimits limits;
  limits.max_labels = 1u << 14;
  limits.max_configs = 8'000'000;
  std::size_t labels_psi = 0, labels_next = 0, configs_next = 0;
  bool blowup = false;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    try {
      ReStep psi = apply_r(problem, limits);
      if (with_reduce) {
        auto red = reduce(psi.problem);
        psi.problem = std::move(red.problem);
      }
      ReStep next = apply_rbar(psi.problem, limits);
      if (with_reduce) {
        auto red = reduce(next.problem);
        next.problem = std::move(red.problem);
      }
      labels_psi = psi.problem.output_alphabet().size();
      labels_next = next.problem.output_alphabet().size();
      configs_next = next.problem.total_node_configs() +
                     next.problem.edge_configs().size();
      lcl::bench::keep(labels_next);
    } catch (const ReBlowupError&) {
      blowup = true;
    }
  }
  obs_counters.report(state);
  state.counters["labels_psi"] = static_cast<double>(labels_psi);
  state.counters["labels_next"] = static_cast<double>(labels_next);
  state.counters["configs_next"] = static_cast<double>(configs_next);
  state.counters["blowup"] = blowup ? 1 : 0;
  state.counters["reduce"] = with_reduce ? 1 : 0;
}

#define ABLATION_BENCH(name, expr)                              \
  void BM_Ablation_##name##_Reduced(benchmark::State& state) {  \
    run_ablation(state, expr, true);                            \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Reduced);                      \
  void BM_Ablation_##name##_Faithful(benchmark::State& state) { \
    run_ablation(state, expr, false);                           \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Faithful);

ABLATION_BENCH(TwoColoring, problems::two_coloring(2))
ABLATION_BENCH(ThreeColoring, problems::coloring(3, 2))
ABLATION_BENCH(AnyOrientation, problems::any_orientation(2))
ABLATION_BENCH(SinklessOrientation, problems::sinkless_orientation(3))
ABLATION_BENCH(Mis, problems::mis(2))

#undef ABLATION_BENCH

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
