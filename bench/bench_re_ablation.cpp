// Experiment RE-ABL: ablation of the design choice called out after
// Definition 3.1 - the paper's operators do NOT remove non-maximal
// configurations; our `reduce()` (trim + merge + dominated-label drop) is
// the sound practical counterpart. This bench applies one f = Rbar o R step
// with and without reduction and reports the label/configuration growth and
// the wall time, quantifying how quickly the faithful sequence becomes
// intractable (the doubly-exponential blow-up behind Theorem 3.4's S).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/problems.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"

namespace lcl {
namespace {

void run_ablation(benchmark::State& state,
                  const NodeEdgeCheckableLcl& problem, bool with_reduce,
                  ReKernel kernel = ReKernel::kAuto) {
  ReLimits limits;
  limits.max_labels = 1u << 14;
  limits.max_configs = 8'000'000;
  limits.kernel = kernel;
  std::size_t labels_psi = 0, labels_next = 0, configs_next = 0;
  bool blowup = false;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    try {
      ReStep psi = apply_r(problem, limits);
      if (with_reduce) {
        auto red = reduce(psi.problem);
        psi.problem = std::move(red.problem);
      }
      ReStep next = apply_rbar(psi.problem, limits);
      if (with_reduce) {
        auto red = reduce(next.problem);
        next.problem = std::move(red.problem);
      }
      labels_psi = psi.problem.output_alphabet().size();
      labels_next = next.problem.output_alphabet().size();
      configs_next = next.problem.total_node_configs() +
                     next.problem.edge_configs().size();
      lcl::bench::keep(labels_next);
    } catch (const ReBlowupError&) {
      blowup = true;
    }
  }
  obs_counters.report(state);
  state.counters["labels_psi"] = static_cast<double>(labels_psi);
  state.counters["labels_next"] = static_cast<double>(labels_next);
  state.counters["configs_next"] = static_cast<double>(configs_next);
  state.counters["blowup"] = blowup ? 1 : 0;
  state.counters["reduce"] = with_reduce ? 1 : 0;
  state.counters["mask_kernel"] = kernel == ReKernel::kGeneric ? 0 : 1;
}

// Experiment BENCH-JSON / the kernel ablation: the same operator slice on
// the original ordered-container enumeration (`kGeneric`) versus the dense
// `LabelMask` kernels (`kMask`). One slice iteration applies both R and
// Rbar at the slice's scale; Rbar runs on the base problem rather than on
// R(Pi), because the faithful composition exceeds any enumeration budget
// already at k=5 (reduce leaves 30 labels, so Rbar(reduce(R(Pi))) would
// derive 2^30 - 1 - Theorem 3.4's blow-up, which the ablation benches above
// quantify). The Delta=3, k=5 slice (5-coloring on trees of maximum degree
// 3) is the CI-gated pair: `tools/bench_diff --min-speedup` asserts the
// mask column stays >= 3x faster.
void run_kernel_slice(benchmark::State& state,
                      const NodeEdgeCheckableLcl& problem, ReKernel kernel) {
  ReLimits limits;
  limits.max_labels = 1u << 14;
  limits.max_configs = 64'000'000;
  limits.kernel = kernel;
  std::size_t labels_r = 0, configs_r = 0;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    ReStep r = apply_r(problem, limits);
    ReStep rbar = apply_rbar(problem, limits);
    labels_r = r.problem.output_alphabet().size();
    configs_r = r.problem.total_node_configs() +
                r.problem.edge_configs().size();
    lcl::bench::keep(labels_r);
    lcl::bench::keep(rbar.problem.output_alphabet().size());
  }
  obs_counters.report(state);
  state.counters["labels_r"] = static_cast<double>(labels_r);
  state.counters["configs_r"] = static_cast<double>(configs_r);
  state.counters["mask_kernel"] = kernel == ReKernel::kGeneric ? 0 : 1;
}

void BM_KernelSlice_D3K5_Generic(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kGeneric);
}
BENCHMARK(BM_KernelSlice_D3K5_Generic)->Unit(benchmark::kMillisecond);

void BM_KernelSlice_D3K5_Mask(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kMask);
}
BENCHMARK(BM_KernelSlice_D3K5_Mask)->Unit(benchmark::kMillisecond);

#define ABLATION_BENCH(name, expr)                              \
  void BM_Ablation_##name##_Reduced(benchmark::State& state) {  \
    run_ablation(state, expr, true);                            \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Reduced);                      \
  void BM_Ablation_##name##_Faithful(benchmark::State& state) { \
    run_ablation(state, expr, false);                           \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Faithful);                     \
  void BM_Ablation_##name##_FaithfulGeneric(                    \
      benchmark::State& state) {                                \
    run_ablation(state, expr, false, ReKernel::kGeneric);       \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_FaithfulGeneric);

ABLATION_BENCH(TwoColoring, problems::two_coloring(2))
ABLATION_BENCH(ThreeColoring, problems::coloring(3, 2))
ABLATION_BENCH(AnyOrientation, problems::any_orientation(2))
ABLATION_BENCH(SinklessOrientation, problems::sinkless_orientation(3))
ABLATION_BENCH(Mis, problems::mis(2))

#undef ABLATION_BENCH

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
