// Experiment RE-ABL: ablation of the design choice called out after
// Definition 3.1 - the paper's operators do NOT remove non-maximal
// configurations; our `reduce()` (trim + merge + dominated-label drop) is
// the sound practical counterpart. This bench applies one f = Rbar o R step
// with and without reduction and reports the label/configuration growth and
// the wall time, quantifying how quickly the faithful sequence becomes
// intractable (the doubly-exponential blow-up behind Theorem 3.4's S).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/problems.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"

namespace lcl {
namespace {

void run_ablation(benchmark::State& state,
                  const NodeEdgeCheckableLcl& problem, bool with_reduce,
                  ReKernel kernel = ReKernel::kAuto) {
  ReLimits limits;
  limits.max_labels = 1u << 14;
  limits.max_configs = 8'000'000;
  limits.kernel = kernel;
  std::size_t labels_psi = 0, labels_next = 0, configs_next = 0;
  bool blowup = false;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    try {
      ReStep psi = apply_r(problem, limits);
      if (with_reduce) {
        auto red = reduce(psi.problem, kernel);
        psi.problem = std::move(red.problem);
      }
      ReStep next = apply_rbar(psi.problem, limits);
      if (with_reduce) {
        auto red = reduce(next.problem, kernel);
        next.problem = std::move(red.problem);
      }
      labels_psi = psi.problem.output_alphabet().size();
      labels_next = next.problem.output_alphabet().size();
      configs_next = next.problem.total_node_configs() +
                     next.problem.edge_configs().size();
      lcl::bench::keep(labels_next);
    } catch (const ReBlowupError&) {
      blowup = true;
    }
  }
  obs_counters.report(state);
  state.counters["labels_psi"] = static_cast<double>(labels_psi);
  state.counters["labels_next"] = static_cast<double>(labels_next);
  state.counters["configs_next"] = static_cast<double>(configs_next);
  state.counters["blowup"] = blowup ? 1 : 0;
  state.counters["reduce"] = with_reduce ? 1 : 0;
  state.counters["mask_kernel"] = kernel == ReKernel::kGeneric ? 0 : 1;
}

// Experiment BENCH-JSON / the kernel ablation: the same operator slice on
// the original ordered-container enumeration (`kGeneric`) versus the dense
// `LabelMask` kernels (`kMask`). One slice iteration applies both R and
// Rbar at the slice's scale; Rbar runs on the base problem rather than on
// R(Pi), because the faithful composition exceeds any enumeration budget
// already at k=5 (reduce leaves 30 labels, so Rbar(reduce(R(Pi))) would
// derive 2^30 - 1 - Theorem 3.4's blow-up, which the ablation benches above
// quantify). The Delta=3, k=5 slice (5-coloring on trees of maximum degree
// 3) is the CI-gated pair: `tools/bench_diff --min-speedup` asserts the
// mask column stays >= 3x faster.
void run_kernel_slice(benchmark::State& state,
                      const NodeEdgeCheckableLcl& problem, ReKernel kernel) {
  ReLimits limits;
  limits.max_labels = 1u << 14;
  limits.max_configs = 64'000'000;
  limits.kernel = kernel;
  std::size_t labels_r = 0, configs_r = 0;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    ReStep r = apply_r(problem, limits);
    ReStep rbar = apply_rbar(problem, limits);
    labels_r = r.problem.output_alphabet().size();
    configs_r = r.problem.total_node_configs() +
                r.problem.edge_configs().size();
    lcl::bench::keep(labels_r);
    lcl::bench::keep(rbar.problem.output_alphabet().size());
  }
  obs_counters.report(state);
  state.counters["labels_r"] = static_cast<double>(labels_r);
  state.counters["configs_r"] = static_cast<double>(configs_r);
  state.counters["mask_kernel"] = kernel == ReKernel::kGeneric ? 0 : 1;
}

void BM_KernelSlice_D3K5_Generic(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kGeneric);
}
BENCHMARK(BM_KernelSlice_D3K5_Generic)->Unit(benchmark::kMillisecond);

void BM_KernelSlice_D3K5_Mask(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kMask);
}
BENCHMARK(BM_KernelSlice_D3K5_Mask)->Unit(benchmark::kMillisecond);

// Forced multi-word tiers on the same slice: kMask2/kMask4 widen every
// word-parallel loop to 2/4 words even though one would do, bounding the
// cost of the 65-128 and 129-256 label tiers relative to both endpoints
// (they must stay well ahead of the generic enumeration; the CI gate pins
// that ratio per tier).
void BM_KernelSlice_D3K5_Mask2(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kMask2);
}
BENCHMARK(BM_KernelSlice_D3K5_Mask2)->Unit(benchmark::kMillisecond);

void BM_KernelSlice_D3K5_Mask4(benchmark::State& state) {
  run_kernel_slice(state, problems::coloring(5, 3), ReKernel::kMask4);
}
BENCHMARK(BM_KernelSlice_D3K5_Mask4)->Unit(benchmark::kMillisecond);

// Reduce slice past the one-word seam. The dominated-label pass is the one
// per-iterate pass whose cost is quadratic in the alphabet, and its worst
// case is a *fruitless* scan: every ordered pair passes the edge-partner and
// g-preimage inclusions and is rejected only at the node-configuration
// probe, so the full n^2 sweep runs to completion. This problem pins that
// shape at 96 labels (W=2 tier under kAuto): all edges allowed (partner
// inclusions always hold), node constraint = {l, l} doubles only (replacing
// one occurrence yields a forbidden mixed pair, so no label is ever
// dominated, and the per-label node contexts keep merge_once from firing).
NodeEdgeCheckableLcl wide_probe_wall(int labels) {
  Alphabet output;
  for (int l = 0; l < labels; ++l) {
    std::string name = "w";
    name += std::to_string(l);
    output.add(name);
  }
  NodeEdgeCheckableLcl::Builder b("wide-probe-wall", Alphabet({"-"}),
                                  std::move(output), /*max_degree=*/2);
  for (Label l = 0; l < static_cast<Label>(labels); ++l) {
    b.allow_node({l, l});
  }
  for (Label a = 0; a < static_cast<Label>(labels); ++a) {
    for (Label c = a; c < static_cast<Label>(labels); ++c) {
      b.allow_edge(a, c);
    }
  }
  b.unrestricted_inputs();
  return b.build();
}

void run_reduce_slice(benchmark::State& state,
                      const NodeEdgeCheckableLcl& problem, ReKernel kernel) {
  std::size_t labels_out = 0, configs_out = 0;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    auto red = reduce(problem, kernel);
    labels_out = red.problem.output_alphabet().size();
    configs_out = red.problem.total_node_configs() +
                  red.problem.edge_configs().size();
    lcl::bench::keep(labels_out);
  }
  obs_counters.report(state);
  state.counters["labels_out"] = static_cast<double>(labels_out);
  state.counters["configs_out"] = static_cast<double>(configs_out);
  state.counters["mask_kernel"] = kernel == ReKernel::kGeneric ? 0 : 1;
}

void BM_ReduceSlice_Wide96_Generic(benchmark::State& state) {
  run_reduce_slice(state, wide_probe_wall(96), ReKernel::kGeneric);
}
BENCHMARK(BM_ReduceSlice_Wide96_Generic)->Unit(benchmark::kMillisecond);

void BM_ReduceSlice_Wide96_Auto(benchmark::State& state) {
  run_reduce_slice(state, wide_probe_wall(96), ReKernel::kAuto);
}
BENCHMARK(BM_ReduceSlice_Wide96_Auto)->Unit(benchmark::kMillisecond);

#define ABLATION_BENCH(name, expr)                              \
  void BM_Ablation_##name##_Reduced(benchmark::State& state) {  \
    run_ablation(state, expr, true);                            \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Reduced);                      \
  void BM_Ablation_##name##_Faithful(benchmark::State& state) { \
    run_ablation(state, expr, false);                           \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_Faithful);                     \
  void BM_Ablation_##name##_FaithfulGeneric(                    \
      benchmark::State& state) {                                \
    run_ablation(state, expr, false, ReKernel::kGeneric);       \
  }                                                             \
  BENCHMARK(BM_Ablation_##name##_FaithfulGeneric);

ABLATION_BENCH(TwoColoring, problems::two_coloring(2))
ABLATION_BENCH(ThreeColoring, problems::coloring(3, 2))
ABLATION_BENCH(AnyOrientation, problems::any_orientation(2))
ABLATION_BENCH(SinklessOrientation, problems::sinkless_orientation(3))
ABLATION_BENCH(Mis, problems::mis(2))

#undef ABLATION_BENCH

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
