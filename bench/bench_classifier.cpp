// Experiment CLS: the Section 1.4 decidability tooling. Classify a battery
// of no-input LCLs on cycles with the automata-theoretic classifier and
// cross-check each verdict against measured behaviour:
//   - O(1) verdicts come with a round-elimination collapse step;
//   - Theta(log* n) verdicts are cross-checked by running a log*-round
//     algorithm (Linial) on cycles;
//   - Theta(n) verdicts (2-coloring) match the period-2 solvable-lengths
//     structure;
//   - unsolvable verdicts mean no closed walk in the automaton.
// Counters: class code (0 unsolvable, 1 global, 2 log*, 3 constant), the
// collapse step, and the smallest SCC gcd.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "classify/cycle_classifier.hpp"
#include "classify/path_classifier.hpp"
#include "core/problems.hpp"

namespace lcl {
namespace {

void run_classifier(benchmark::State& state,
                    const NodeEdgeCheckableLcl& problem) {
  CycleClassification result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = classify_on_cycles(problem, /*max_speedup_steps=*/2);
    lcl::bench::keep(result.complexity);
  }
  state.counters["class"] =
      static_cast<double>(static_cast<int>(result.complexity));
  state.counters["collapse_step"] = result.zero_round_collapse_step;
  state.counters["min_gcd"] =
      result.scc_gcds.empty() ? -1.0
                              : static_cast<double>(result.scc_gcds.front());
  state.SetLabel(to_string(result.complexity));
}

#define CLASSIFIER_BENCH(name, expr)                   \
  void BM_Classify_##name(benchmark::State& state) {   \
    run_classifier(state, expr);                       \
  }                                                    \
  BENCHMARK(BM_Classify_##name);

CLASSIFIER_BENCH(Trivial, problems::trivial(2))
CLASSIFIER_BENCH(AnyOrientation, problems::any_orientation(2))
CLASSIFIER_BENCH(ThreeColoring, problems::coloring(3, 2))
CLASSIFIER_BENCH(FourColoring, problems::coloring(4, 2))
CLASSIFIER_BENCH(TwoColoring, problems::two_coloring(2))
CLASSIFIER_BENCH(Mis, problems::mis(2))
CLASSIFIER_BENCH(MaximalMatching, problems::maximal_matching(2))
CLASSIFIER_BENCH(SinklessOrientation, problems::sinkless_orientation(2))
CLASSIFIER_BENCH(WeakTwoColoring, problems::weak_coloring(2, 2))
CLASSIFIER_BENCH(ThreeEdgeColoring, problems::edge_coloring(3, 2))
CLASSIFIER_BENCH(PerfectMatching, problems::perfect_matching(2))

#undef CLASSIFIER_BENCH

void run_path_classifier(benchmark::State& state,
                         const NodeEdgeCheckableLcl& problem) {
  PathClassification result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = classify_on_paths(problem, /*max_speedup_steps=*/2);
    lcl::bench::keep(result.complexity);
  }
  state.counters["class"] =
      static_cast<double>(static_cast<int>(result.complexity));
  state.counters["collapse_step"] = result.zero_round_collapse_step;
  state.counters["all_lengths"] = result.solvable_for_all_lengths ? 1 : 0;
  state.SetLabel(to_string(result.complexity));
}

#define PATH_BENCH(name, expr)                            \
  void BM_ClassifyPath_##name(benchmark::State& state) {  \
    run_path_classifier(state, expr);                     \
  }                                                       \
  BENCHMARK(BM_ClassifyPath_##name);

PATH_BENCH(Trivial, problems::trivial(2))
PATH_BENCH(AnyOrientation, problems::any_orientation(2))
PATH_BENCH(ThreeColoring, problems::coloring(3, 2))
PATH_BENCH(TwoColoring, problems::two_coloring(2))
PATH_BENCH(Mis, problems::mis(2))
PATH_BENCH(MaximalMatching, problems::maximal_matching(2))
PATH_BENCH(PerfectMatching, problems::perfect_matching(2))

#undef PATH_BENCH

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
