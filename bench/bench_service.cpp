// Service-tier benchmarks: end-to-end request cost of the lcld stack
// (validating HTTP client -> HttpServer -> Service -> batch runtime) over
// a real loopback socket. The classify series runs against a warm cache,
// so the columns measure the service overhead per request - transport,
// parse, lint, canonical cache probe - not engine time; `p50_us`/`p99_us`
// are computed from per-request wall times, and `req_per_s` is the
// figure of merit for the threaded throughput row.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "svc/http.hpp"
#include "svc/service.hpp"

namespace lcl {
namespace {

// Perfect matching on paths: nontrivial but cheap, the same problem the
// service tests classify.
constexpr const char* kSpec = R"({
  "name": "mm", "max_degree": 2,
  "inputs": ["-"], "outputs": ["m", "u"],
  "node_configs": [[0], [1], [0, 1], [1, 1]],
  "edge_configs": [[0, 0], [0, 1], [1, 1]],
  "g": [[0, 1]]
})";

/// One daemon shared by every benchmark in the binary: service + HTTP
/// listener on an ephemeral loopback port, cache primed with kSpec.
class BenchDaemon {
 public:
  BenchDaemon() {
    svc::Service::Options options;
    options.jobs = 4;
    options.max_inflight = 64;
    options.engine.max_steps = 4;
    service_ = std::make_unique<svc::Service>(options);

    svc::HttpServer::Options http;
    http.port = 0;
    http.max_connections = 128;
    http.handler = [this](const svc::HttpRequest& request) {
      return service_->handle(request);
    };
    server_ = std::make_unique<svc::HttpServer>(std::move(http));
    if (!server_->start()) {
      std::fprintf(stderr, "bench_service: %s\n", server_->error().c_str());
      std::abort();
    }
    // Prime: every measured classify below is a warm confirmed cache hit.
    (void)svc::http_request("127.0.0.1", server_->port(), "POST",
                            "/v1/classify", kSpec);
  }

  ~BenchDaemon() {
    server_->drain();
    service_->drain();
  }

  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<svc::Service> service_;
  std::unique_ptr<svc::HttpServer> server_;
};

BenchDaemon& daemon() {
  static BenchDaemon instance;
  return instance;
}

double percentile(std::vector<double> sorted_us, double fraction) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

/// Transport floor: /healthz does no parsing or compute, so this row is
/// the connect + request + response cost the classify rows sit on.
void BM_HealthzLatency(benchmark::State& state) {
  const std::uint16_t port = daemon().port();
  for (auto _ : state) {
    const auto response =
        svc::http_request("127.0.0.1", port, "GET", "/healthz");
    bench::keep(response.status);
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HealthzLatency)->Unit(benchmark::kMicrosecond);

/// Warm-cache classify latency, one request at a time. The tail columns
/// come from per-request wall clocks, not the benchmark mean.
void BM_ClassifyWarmLatency(benchmark::State& state) {
  const std::uint16_t port = daemon().port();
  std::vector<double> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto response =
        svc::http_request("127.0.0.1", port, "POST", "/v1/classify", kSpec);
    const auto end = std::chrono::steady_clock::now();
    bench::keep(response.status);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = percentile(latencies_us, 0.50);
  state.counters["p99_us"] = percentile(latencies_us, 0.99);
}
BENCHMARK(BM_ClassifyWarmLatency)->Unit(benchmark::kMicrosecond);

/// Warm-cache classify under concurrency: google-benchmark fans the loop
/// out over N client threads against the one shared daemon. `req_per_s`
/// aggregates across threads; `p50_us`/`p99_us` are per-thread
/// percentiles averaged across threads by the reporter.
void BM_ClassifyWarmThroughput(benchmark::State& state) {
  const std::uint16_t port = daemon().port();
  std::vector<double> local_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto response =
        svc::http_request("127.0.0.1", port, "POST", "/v1/classify", kSpec);
    const auto end = std::chrono::steady_clock::now();
    bench::keep(response.status);
    local_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = benchmark::Counter(
      percentile(local_us, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] = benchmark::Counter(
      percentile(local_us, 0.99), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ClassifyWarmThroughput)->Threads(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
