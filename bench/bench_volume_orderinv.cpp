// Experiment VOL-OI: the Theorem 4.1/4.3 machinery. Sub-log* VOLUME
// algorithms can be made order-invariant, and order-invariant o(n)-probe
// algorithms freeze to O(1) probes (Theorem 2.11). The bench reports:
//   - order-invariance verdicts: VolumeOrientByIds passes the Definition
//     2.10 property test, VolumeColeVishkin (which reads identifier bits)
//     fails it;
//   - the freezing pipeline: the wasteful order-invariant orienter's probe
//     count grows with n, its frozen wrapper's probe count does not, and
//     both outputs stay correct.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/cole_vishkin.hpp"
#include "volume/algorithms.hpp"
#include "volume/order_invariance.hpp"

namespace lcl {
namespace {

void BM_OrderInvarianceVerdicts(benchmark::State& state) {
  SplitRng rng(5);
  Graph tree = make_random_tree(48, 3, rng);
  const auto tree_input = uniform_labeling(tree, 0);
  const auto tree_ids = random_distinct_ids(tree, 3, rng);

  Graph cycle = make_cycle(48);
  const auto cycle_ids = random_distinct_ids(cycle, 2, rng);
  const auto cycle_input = chain_orientation_input(cycle, true);
  const VolumeColeVishkin cv(std::uint64_t{1} << 62);

  bool orient_oi = false, cv_oi = true;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    orient_oi = check_volume_order_invariance(VolumeOrientByIds{}, tree,
                                              tree_input, tree_ids, 8, rng);
    cv_oi = check_volume_order_invariance(cv, cycle, cycle_input, cycle_ids,
                                          20, rng);
    lcl::bench::keep(orient_oi);
  }
  obs_counters.report(state);
  state.counters["orient_is_order_invariant"] = orient_oi ? 1 : 0;
  state.counters["cole_vishkin_is_order_invariant"] = cv_oi ? 1 : 0;
}
BENCHMARK(BM_OrderInvarianceVerdicts);

void BM_FreezingPipeline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n);
  Graph g = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);

  const WastefulVolumeOrient wasteful;
  const FrozenVolumeAlgorithm frozen(wasteful, /*n0=*/64);
  VolumeRunResult raw, cold;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    raw = run_volume_algorithm(wasteful, g, input, ids);
    cold = run_volume_algorithm(frozen, g, input, ids);
    lcl::bench::keep(cold.max_probes);
  }
  const auto problem = problems::any_orientation(3);
  if (!is_correct_solution(problem, g, input, raw.output) ||
      !is_correct_solution(problem, g, input, cold.output)) {
    state.SkipWithError("freezing changed correctness");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["probes_unfrozen"] = static_cast<double>(raw.max_probes);
  state.counters["probes_frozen"] = static_cast<double>(cold.max_probes);
}
BENCHMARK(BM_FreezingPipeline)->RangeMultiplier(8)->Range(64, 1 << 15);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
