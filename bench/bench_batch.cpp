// Throughput of the batch survey runtime: threads-vs-throughput scaling of
// the worker pool and the cold-vs-warm cost of the result cache. The survey
// family is the exhaustive Delta=2 slice with 3 output labels - large
// enough (several hundred problems) that per-task scheduling overhead is
// amortized and scaling is visible.

#include <memory>
#include <numeric>
#include <string>

#include "batch/cache.hpp"
#include "batch/survey.hpp"
#include "bench_common.hpp"
#include "obs/run_context.hpp"

namespace lcl {
namespace {

batch::SurveyOptions survey_options(std::size_t jobs,
                                    batch::Cache* cache = nullptr) {
  batch::SurveyOptions options;
  options.jobs = jobs;
  options.engine.max_steps = 3;
  options.cache = cache;
  return options;
}

/// Sum of the pool's per-worker busy fractions from the last survey run -
/// the *effective* parallelism actually delivered. On a single-core
/// container this stays near 1.0 no matter what --jobs says, which is why
/// every counter below reports it next to the throughput/ratio columns:
/// a cold-vs-warm or jobs-scaling claim is only as honest as this number.
double effective_parallelism(const obs::RunContext& run, std::size_t jobs) {
  const auto busy = run.busy_fractions();
  if (busy.empty()) return jobs <= 1 ? 1.0 : 0.0;  // inline run: no pool
  return std::accumulate(busy.begin(), busy.end(), 0.0);
}

const batch::Family& bench_family() {
  static const batch::Family family = []() {
    batch::ExhaustiveFamilyOptions options;
    options.labels = 3;
    options.max_problems = 400;
    return batch::exhaustive_family(options);
  }();
  return family;
}

/// Threads-vs-throughput: the same survey at --jobs = 1, 2, 4, 8. Every
/// iteration runs cacheless, so the column measures the pool, not cache
/// warmth. `problems_per_s` is the figure of merit.
void BM_SurveyJobs(benchmark::State& state) {
  const auto& family = bench_family();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  obs::RunContext run("bench-survey-jobs", "survey");
  auto options = survey_options(jobs);
  options.run = &run;
  for (auto _ : state) {
    const auto report = batch::run_survey(family, options);
    bench::keep(report.problems);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["problems"] = static_cast<double>(family.members.size());
  state.counters["problems_per_s"] = benchmark::Counter(
      static_cast<double>(family.members.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["effective_parallelism"] = effective_parallelism(run, jobs);
}
BENCHMARK(BM_SurveyJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Cold cache: every iteration starts from an empty cache and pays full
/// price (plus insert overhead) - the baseline for the warm column.
void BM_SurveyCacheCold(benchmark::State& state) {
  const auto& family = bench_family();
  obs::RunContext run("bench-survey-cold", "survey");
  for (auto _ : state) {
    batch::Cache cache;
    auto options = survey_options(4, &cache);
    options.run = &run;
    const auto report = batch::run_survey(family, options);
    bench::keep(report.problems);
  }
  state.counters["problems_per_s"] = benchmark::Counter(
      static_cast<double>(family.members.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["effective_parallelism"] = effective_parallelism(run, 4);
}
BENCHMARK(BM_SurveyCacheCold)->Unit(benchmark::kMillisecond);

/// Warm cache: one cache shared across iterations; after the first, every
/// verdict is a confirmed hit. The speedup over BM_SurveyCacheCold is the
/// cache's value on a re-survey (the --resume path).
void BM_SurveyCacheWarm(benchmark::State& state) {
  const auto& family = bench_family();
  batch::Cache cache;
  obs::RunContext run("bench-survey-warm", "survey");
  // Prime outside the measurement loop.
  (void)batch::run_survey(family, survey_options(4, &cache));
  for (auto _ : state) {
    auto options = survey_options(4, &cache);
    options.run = &run;
    const auto report = batch::run_survey(family, options);
    bench::keep(report.problems);
  }
  const auto stats = cache.stats();
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses);
  state.counters["problems_per_s"] = benchmark::Counter(
      static_cast<double>(family.members.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["effective_parallelism"] = effective_parallelism(run, 4);
}
BENCHMARK(BM_SurveyCacheWarm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
