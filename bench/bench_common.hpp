#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "graph/labeling.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lcl::bench {

/// Read-only optimization barrier. The bundled google-benchmark's
/// *non-const* `DoNotOptimize(T&)` overload uses a `"+r,m"` inline-asm
/// constraint that GCC 12 mis-handles for doubles at -O2, clobbering the
/// value that is read afterwards for counters. Taking the argument by
/// const reference forces the safe, read-only overload.
template <typename T>
inline void keep(const T& value) {
  benchmark::DoNotOptimize(value);
}

/// Strict upper bound on the identifiers in `ids`.
inline std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

/// Standard reference scales reported alongside measured counters so the
/// series can be read against the paper's asymptotic classes.
inline void report_scales(benchmark::State& state, std::size_t n) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["log_star_n"] =
      static_cast<double>(log_star(static_cast<double>(n)));
  state.counters["log2_n"] =
      n >= 1 ? static_cast<double>(floor_log2(n)) : 0.0;
}

}  // namespace lcl::bench
