#pragma once

#include <benchmark/benchmark.h>
#include <sys/utsname.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/labeling.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

#ifndef LCL_GIT_SHA
#define LCL_GIT_SHA "unknown"
#endif

namespace lcl::bench {

/// Read-only optimization barrier. The bundled google-benchmark's
/// *non-const* `DoNotOptimize(T&)` overload uses a `"+r,m"` inline-asm
/// constraint that GCC 12 mis-handles for doubles at -O2, clobbering the
/// value that is read afterwards for counters. Taking the argument by
/// const reference forces the safe, read-only overload.
template <typename T>
inline void keep(const T& value) {
  benchmark::DoNotOptimize(value);
}

/// Strict upper bound on the identifiers in `ids`.
inline std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

/// Standard reference scales reported alongside measured counters so the
/// series can be read against the paper's asymptotic classes.
inline void report_scales(benchmark::State& state, std::size_t n) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["log_star_n"] =
      static_cast<double>(log_star(static_cast<double>(n)));
  state.counters["log2_n"] =
      n >= 1 ? static_cast<double>(floor_log2(n)) : 0.0;
}

/// Snapshot of the observability counters the Figure-1 series care about.
/// Construct before the measurement loop, `report` after it: the deltas -
/// per iteration - land in the bench JSON as `probes`, `rounds`, `re_steps`
/// columns. In LCL_OBS=0 builds the registry never moves and the columns
/// read 0.
class ObsCounters {
 public:
  ObsCounters() { read(probes_, rounds_, re_steps_); }

  void report(benchmark::State& state) const {
    std::uint64_t probes = 0, rounds = 0, re_steps = 0;
    read(probes, rounds, re_steps);
    const double iters =
        std::max<double>(1.0, static_cast<double>(state.iterations()));
    state.counters["probes"] =
        static_cast<double>(probes - probes_) / iters;
    state.counters["rounds"] =
        static_cast<double>(rounds - rounds_) / iters;
    state.counters["re_steps"] =
        static_cast<double>(re_steps - re_steps_) / iters;
  }

 private:
  static void read(std::uint64_t& probes, std::uint64_t& rounds,
                   std::uint64_t& re_steps) {
    auto& reg = obs::registry();
    probes = reg.counter("volume.probes").value();
    rounds = reg.counter("local.rounds").value();
    re_steps = reg.counter("re.steps").value();
  }

  std::uint64_t probes_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t re_steps_ = 0;
};

/// The bench-wide trace session opened by `--trace` (null when tracing is
/// off). Kept alive until after benchmark shutdown so every span lands in
/// the file.
inline std::unique_ptr<obs::TraceSession>& global_trace_session() {
  static std::unique_ptr<obs::TraceSession> session;
  return session;
}

/// Consumes the lclscape-specific argv flags before google-benchmark sees
/// them:
///   --trace=<path> | --trace <path>   dump a trace next to the bench JSON
///                                     (.json => Chrome format, else JSONL)
///   --trace-format=chrome|jsonl       override the extension heuristic
/// Also turns runtime metrics on, so bench JSON gains the observability
/// columns even without tracing.
inline void init_obs(int* argc, char** argv) {
  std::string trace_path;
  std::string trace_format;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < *argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(arg, "--trace-format=", 15) == 0) {
      trace_format = arg + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;

  obs::set_metrics_enabled(true);
  if (trace_path.empty()) return;
  obs::TraceFormat format = obs::TraceFormat::kJsonl;
  if (trace_format == "chrome") {
    format = obs::TraceFormat::kChromeJson;
  } else if (trace_format.empty() && trace_path.size() >= 5 &&
             trace_path.compare(trace_path.size() - 5, 5, ".json") == 0) {
    format = obs::TraceFormat::kChromeJson;
  } else if (!trace_format.empty() && trace_format != "jsonl") {
    std::fprintf(stderr,
                 "lclscape: unknown --trace-format '%s' (expected "
                 "'chrome' or 'jsonl'), using jsonl\n",
                 trace_format.c_str());
  }
  auto& session = global_trace_session();
  try {
    session = std::make_unique<obs::TraceSession>(trace_path, format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclscape: %s\n", e.what());
    std::exit(1);
  }
  obs::TraceSession::set_current(session.get());
  std::fprintf(stderr, "lclscape: tracing to %s (%s)\n", trace_path.c_str(),
               format == obs::TraceFormat::kChromeJson ? "chrome" : "jsonl");
#if !LCL_OBS
  std::fprintf(stderr,
               "lclscape: note: built with LCL_OBS=0 - engine "
               "instrumentation is compiled out, the trace will only "
               "contain harness records\n");
#endif
}

inline void finish_obs() {
  auto& session = global_trace_session();
  if (session != nullptr) {
    obs::TraceSession::set_current(nullptr);
    session->close();
    session.reset();
  }
}

/// Destination of `--json=<path>` (empty when machine-readable output is
/// off). Filled by `init_json`, consumed by `finish_json`.
inline std::string& json_output_path() {
  static std::string path;
  return path;
}

/// Consumes `--json=<path>` / `--json <path>` before google-benchmark sees
/// them. Every bench binary gains the flag through `LCL_BENCH_MAIN`.
inline void init_json(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_output_path() = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < *argc) {
      json_output_path() = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Cold first iterations (allocator warm-up, branch predictors, page
/// faults) skew short benchmarks; a discarded warm-up phase keeps the JSON
/// numbers steady-state. Injected as google-benchmark's own
/// `--benchmark_min_warmup_time` so an explicit flag on the command line
/// still wins.
inline void apply_default_warmup(int* argc, char*** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp((*argv)[i], "--benchmark_min_warmup_time",
                     std::strlen("--benchmark_min_warmup_time")) == 0) {
      return;
    }
  }
  static char warmup_flag[] = "--benchmark_min_warmup_time=0.1";
  static std::vector<char*> patched;
  patched.assign(*argv, *argv + *argc);
  patched.insert(patched.begin() + 1, warmup_flag);
  patched.push_back(nullptr);
  *argv = patched.data();
  *argc += 1;
}

/// Console reporter that additionally captures every measured run, so one
/// pass produces both the human console table and the machine-readable
/// `BENCH_<name>.json` document.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::json::Value row = obs::json::Value::make_object();
      auto& fields = row.object();
      fields["name"] = obs::json::Value(run.benchmark_name());
      fields["iterations"] =
          obs::json::Value(static_cast<std::int64_t>(run.iterations));
      fields["real_time"] = obs::json::Value(run.GetAdjustedRealTime());
      fields["cpu_time"] = obs::json::Value(run.GetAdjustedCPUTime());
      fields["time_unit"] = obs::json::Value(
          std::string(benchmark::GetTimeUnitString(run.time_unit)));
      obs::json::Value counters = obs::json::Value::make_object();
      for (const auto& [key, counter] : run.counters) {
        counters.object()[key] =
            obs::json::Value(static_cast<double>(counter.value));
      }
      fields["counters"] = std::move(counters);
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<obs::json::Value>& rows() { return rows_; }

 private:
  std::vector<obs::json::Value> rows_;
};

/// Writes the schema-versioned bench document (`lclscape.bench.v1`):
/// provenance (git SHA, host, timestamp), the end-of-run observability
/// counter snapshot, and one row per measured benchmark. Returns the
/// process exit code (non-zero when the file cannot be written - CI must
/// not mistake a missing artifact for a clean run).
inline int finish_json(JsonCapturingReporter& reporter,
                       const char* binary_name) {
  const std::string& path = json_output_path();
  if (path.empty()) return 0;

  obs::json::Value doc = obs::json::Value::make_object();
  auto& top = doc.object();
  top["schema"] = obs::json::Value(std::string("lclscape.bench.v1"));
  top["binary"] = obs::json::Value(std::string(binary_name));
  top["git_sha"] = obs::json::Value(std::string(LCL_GIT_SHA));

  obs::json::Value host = obs::json::Value::make_object();
  utsname uts{};
  if (uname(&uts) == 0) {
    host.object()["sysname"] = obs::json::Value(std::string(uts.sysname));
    host.object()["release"] = obs::json::Value(std::string(uts.release));
    host.object()["machine"] = obs::json::Value(std::string(uts.machine));
  }
  host.object()["hardware_concurrency"] = obs::json::Value(
      static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  top["host"] = std::move(host);

  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  char stamp[32] = {0};
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  top["timestamp"] = obs::json::Value(std::string(stamp));

  // End-of-run counter snapshot: totals across the whole process, the
  // per-iteration deltas live in each row's `counters`.
  std::string error;
  auto snapshot = obs::json::parse(obs::registry().to_json(), &error);
  top["obs"] = snapshot != nullptr ? *snapshot : obs::json::Value::make_object();

  obs::json::Value benchmarks = obs::json::Value::make_array();
  benchmarks.array() = std::move(reporter.rows());
  top["benchmarks"] = std::move(benchmarks);

  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "lclscape: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  out << obs::json::dump(doc) << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "lclscape: short write to '%s'\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "lclscape: bench json written to %s\n", path.c_str());
  return 0;
}

}  // namespace lcl::bench

/// Drop-in replacement for BENCHMARK_MAIN() that installs the lclscape
/// observability harness: strips `--trace*` and `--json*` flags, enables
/// metrics, injects a discarded warm-up phase, and after the run finalizes
/// the trace (with the metrics footer) and the `--json` document.
#define LCL_BENCH_MAIN()                                                \
  int main(int argc, char** argv) {                                     \
    const char* bench_binary_name = argv[0];                            \
    ::lcl::bench::init_obs(&argc, argv);                                \
    ::lcl::bench::init_json(&argc, argv);                               \
    ::lcl::bench::apply_default_warmup(&argc, &argv);                   \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::lcl::bench::JsonCapturingReporter reporter;                       \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    ::benchmark::Shutdown();                                            \
    const int json_rc =                                                 \
        ::lcl::bench::finish_json(reporter, bench_binary_name);         \
    ::lcl::bench::finish_obs();                                         \
    return json_rc;                                                     \
  }                                                                     \
  int main(int, char**)
