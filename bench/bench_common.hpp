#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "graph/labeling.hpp"
#include "obs/obs.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lcl::bench {

/// Read-only optimization barrier. The bundled google-benchmark's
/// *non-const* `DoNotOptimize(T&)` overload uses a `"+r,m"` inline-asm
/// constraint that GCC 12 mis-handles for doubles at -O2, clobbering the
/// value that is read afterwards for counters. Taking the argument by
/// const reference forces the safe, read-only overload.
template <typename T>
inline void keep(const T& value) {
  benchmark::DoNotOptimize(value);
}

/// Strict upper bound on the identifiers in `ids`.
inline std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

/// Standard reference scales reported alongside measured counters so the
/// series can be read against the paper's asymptotic classes.
inline void report_scales(benchmark::State& state, std::size_t n) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["log_star_n"] =
      static_cast<double>(log_star(static_cast<double>(n)));
  state.counters["log2_n"] =
      n >= 1 ? static_cast<double>(floor_log2(n)) : 0.0;
}

/// Snapshot of the observability counters the Figure-1 series care about.
/// Construct before the measurement loop, `report` after it: the deltas -
/// per iteration - land in the bench JSON as `probes`, `rounds`, `re_steps`
/// columns. In LCL_OBS=0 builds the registry never moves and the columns
/// read 0.
class ObsCounters {
 public:
  ObsCounters() { read(probes_, rounds_, re_steps_); }

  void report(benchmark::State& state) const {
    std::uint64_t probes = 0, rounds = 0, re_steps = 0;
    read(probes, rounds, re_steps);
    const double iters =
        std::max<double>(1.0, static_cast<double>(state.iterations()));
    state.counters["probes"] =
        static_cast<double>(probes - probes_) / iters;
    state.counters["rounds"] =
        static_cast<double>(rounds - rounds_) / iters;
    state.counters["re_steps"] =
        static_cast<double>(re_steps - re_steps_) / iters;
  }

 private:
  static void read(std::uint64_t& probes, std::uint64_t& rounds,
                   std::uint64_t& re_steps) {
    auto& reg = obs::registry();
    probes = reg.counter("volume.probes").value();
    rounds = reg.counter("local.rounds").value();
    re_steps = reg.counter("re.steps").value();
  }

  std::uint64_t probes_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t re_steps_ = 0;
};

/// The bench-wide trace session opened by `--trace` (null when tracing is
/// off). Kept alive until after benchmark shutdown so every span lands in
/// the file.
inline std::unique_ptr<obs::TraceSession>& global_trace_session() {
  static std::unique_ptr<obs::TraceSession> session;
  return session;
}

/// Consumes the lclscape-specific argv flags before google-benchmark sees
/// them:
///   --trace=<path> | --trace <path>   dump a trace next to the bench JSON
///                                     (.json => Chrome format, else JSONL)
///   --trace-format=chrome|jsonl       override the extension heuristic
/// Also turns runtime metrics on, so bench JSON gains the observability
/// columns even without tracing.
inline void init_obs(int* argc, char** argv) {
  std::string trace_path;
  std::string trace_format;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < *argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(arg, "--trace-format=", 15) == 0) {
      trace_format = arg + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;

  obs::set_metrics_enabled(true);
  if (trace_path.empty()) return;
  obs::TraceFormat format = obs::TraceFormat::kJsonl;
  if (trace_format == "chrome") {
    format = obs::TraceFormat::kChromeJson;
  } else if (trace_format.empty() && trace_path.size() >= 5 &&
             trace_path.compare(trace_path.size() - 5, 5, ".json") == 0) {
    format = obs::TraceFormat::kChromeJson;
  } else if (!trace_format.empty() && trace_format != "jsonl") {
    std::fprintf(stderr,
                 "lclscape: unknown --trace-format '%s' (expected "
                 "'chrome' or 'jsonl'), using jsonl\n",
                 trace_format.c_str());
  }
  auto& session = global_trace_session();
  try {
    session = std::make_unique<obs::TraceSession>(trace_path, format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclscape: %s\n", e.what());
    std::exit(1);
  }
  obs::TraceSession::set_current(session.get());
  std::fprintf(stderr, "lclscape: tracing to %s (%s)\n", trace_path.c_str(),
               format == obs::TraceFormat::kChromeJson ? "chrome" : "jsonl");
#if !LCL_OBS
  std::fprintf(stderr,
               "lclscape: note: built with LCL_OBS=0 - engine "
               "instrumentation is compiled out, the trace will only "
               "contain harness records\n");
#endif
}

inline void finish_obs() {
  auto& session = global_trace_session();
  if (session != nullptr) {
    obs::TraceSession::set_current(nullptr);
    session->close();
    session.reset();
  }
}

}  // namespace lcl::bench

/// Drop-in replacement for BENCHMARK_MAIN() that installs the lclscape
/// observability harness: strips `--trace*` flags, enables metrics, and
/// finalizes the trace (with the metrics footer) after the run.
#define LCL_BENCH_MAIN()                                                \
  int main(int argc, char** argv) {                                     \
    ::lcl::bench::init_obs(&argc, argv);                                \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::lcl::bench::finish_obs();                                         \
    return 0;                                                           \
  }                                                                     \
  int main(int, char**)
