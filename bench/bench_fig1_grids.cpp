// Experiment F1-TR: Figure 1, top right - the landscape on oriented
// d-dimensional grids (Corollary 1.5): O(1), Theta(log* n), Theta(n^{1/d}).
//   O(1)           -> orientation echo (0 rounds);
//   Theta(log* n)  -> per-dimension Cole-Vishkin product coloring in the
//                     PROD-LOCAL model (rounds flat in n);
//   Theta(n^{1/d}) -> checkerboard 2-coloring via the global BFS wave
//                     (rounds ~ d * side).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "grid/algorithms.hpp"
#include "grid/torus.hpp"
#include "local/global_algorithms.hpp"
#include "local/sync_engine.hpp"

namespace lcl {
namespace {

std::vector<std::size_t> extents_for(int d, std::size_t side) {
  return std::vector<std::size_t>(static_cast<std::size_t>(d), side);
}

void BM_GridO1_OrientationEcho(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t side = static_cast<std::size_t>(state.range(1));
  const OrientedTorus torus(extents_for(d, side));
  const auto input = torus.orientation_input();
  IdAssignment ids(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) ids[v] = v + 1;
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(OrientationEcho{}, torus.graph(), input, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(orientation_copy_problem(d), torus.graph(), input,
                           result.output)) {
    state.SkipWithError("invalid echo");
  }
  bench::report_scales(state, torus.node_count());
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
  state.counters["d"] = d;
}
BENCHMARK(BM_GridO1_OrientationEcho)
    ->Args({1, 64})
    ->Args({1, 1024})
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({3, 8})
    ->Args({3, 16});

void BM_GridLogStar_ProductColoring(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t side = static_cast<std::size_t>(state.range(1));
  const OrientedTorus torus(extents_for(d, side));
  SplitRng rng(side * 31 + static_cast<std::size_t>(d));
  const auto prod = random_prod_ids(torus, rng);
  const auto aux = prod.all_tuples(torus);
  const auto ids = combined_ids(torus, prod);
  const auto input = torus.orientation_input();
  const GridColoring algo(d, prod_id_range(prod));
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(algo, torus.graph(), input, ids, 1, 0,
                             1'000'000, &aux);
    lcl::bench::keep(result.rounds);
  }
  const auto dummy = uniform_labeling(torus.graph(), 0);
  if (!is_correct_solution(problems::coloring(algo.colors(), 2 * d),
                           torus.graph(), dummy, result.output)) {
    state.SkipWithError("invalid grid coloring");
  }
  bench::report_scales(state, torus.node_count());
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
  state.counters["cv_rounds"] = algo.cole_vishkin_rounds();
  state.counters["d"] = d;
}
BENCHMARK(BM_GridLogStar_ProductColoring)
    ->Args({1, 64})
    ->Args({1, 1024})
    ->Args({1, 16384})
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({3, 8})
    ->Args({3, 16});

void BM_GridGlobal_Checkerboard(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t side = static_cast<std::size_t>(state.range(1));
  const OrientedTorus torus(extents_for(d, side));
  IdAssignment ids(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) ids[v] = v + 1;
  const auto dummy = uniform_labeling(torus.graph(), 0);
  SyncResult result;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    result = run_synchronous(BfsTwoColoring{}, torus.graph(), dummy, ids, 1);
    lcl::bench::keep(result.rounds);
  }
  if (!is_correct_solution(problems::two_coloring(2 * d), torus.graph(),
                           dummy, result.output)) {
    state.SkipWithError("invalid checkerboard");
  }
  bench::report_scales(state, torus.node_count());
  obs_counters.report(state);
  state.counters["rounds"] = result.rounds;
  state.counters["side"] = static_cast<double>(side);
  state.counters["d"] = d;
}
BENCHMARK(BM_GridGlobal_Checkerboard)
    ->Args({1, 64})
    ->Args({1, 256})
    ->Args({1, 1024})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({2, 32})
    ->Args({2, 64})
    ->Args({3, 8})
    ->Args({3, 12});

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
