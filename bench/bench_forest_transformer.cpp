// Experiment L33: Lemma 3.3 - turning a tree algorithm into a forest
// algorithm costs only a constant-factor radius increase (2T(n^2)+3 here)
// plus the canonical solving of tiny components. The bench compares the
// direct tree execution against the transformed forest execution and
// reports radii and wall time.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/forest_transform.hpp"
#include "local/order_invariant.hpp"

namespace lcl {
namespace {

void BM_DirectTreeAlgorithm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n);
  Graph tree = make_random_tree(n, 3, rng);
  const auto input = uniform_labeling(tree, 0);
  const auto ids = random_distinct_ids(tree, 3, rng);
  const OrientByIdOrder algo;
  HalfEdgeLabeling output;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    output = run_ball_algorithm(algo, tree, input, ids);
    lcl::bench::keep(output);
  }
  if (!is_correct_solution(problems::any_orientation(3), tree, input,
                           output)) {
    state.SkipWithError("invalid orientation");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["radius"] = algo.radius(n);
}
BENCHMARK(BM_DirectTreeAlgorithm)->RangeMultiplier(4)->Range(64, 4096);

void BM_TransformedForestAlgorithm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SplitRng rng(n + 1);
  Graph forest =
      make_random_forest(n, std::max<std::size_t>(2, n / 24), 3, rng);
  const auto input = uniform_labeling(forest, 0);
  const auto ids = random_distinct_ids(forest, 3, rng);
  const OrientByIdOrder tree_algo;
  const auto problem = problems::any_orientation(3);
  const ForestTransformedAlgorithm algo(tree_algo, problem);
  HalfEdgeLabeling output;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    output = run_ball_algorithm(algo, forest, input, ids);
    lcl::bench::keep(output);
  }
  if (!is_correct_solution(problem, forest, input, output)) {
    state.SkipWithError("invalid forest orientation");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["radius"] = algo.radius(n);
  state.counters["tree_radius"] = tree_algo.radius(n * n);
}
BENCHMARK(BM_TransformedForestAlgorithm)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
