// Experiment SYNTH: the constructive content of Theorem 3.10 - synthesize a
// constant-round algorithm for an O(1)-class problem (iterate f, find the
// A_det 0-round witness, lift via Lemma 3.9) and execute it on forests of
// growing size. The measured radius is constant in n; wall time per node is
// the per-query cost of the Lemma 3.9 simulation.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "re/engine.hpp"

namespace lcl {
namespace {

void BM_SynthesizeOrientation(benchmark::State& state) {
  const auto problem = problems::any_orientation(2);
  int k = -1;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    SpeedupEngine engine(problem);
    SpeedupEngine::Options options;
    options.max_steps = 3;
    const auto outcome = engine.run(options);
    k = outcome.zero_round_step;
    lcl::bench::keep(k);
  }
  obs_counters.report(state);
  state.counters["zero_round_step"] = k;
}
BENCHMARK(BM_SynthesizeOrientation);

void BM_RunSynthesizedOnForest(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto problem = problems::any_orientation(2);
  SpeedupEngine engine(problem);
  SpeedupEngine::Options options;
  options.max_steps = 3;
  const auto outcome = engine.run(options);
  if (outcome.zero_round_step < 0) {
    state.SkipWithError("no collapse");
    return;
  }
  const auto algorithm = engine.synthesize();

  SplitRng rng(n);
  Graph forest = make_random_forest(n, std::max<std::size_t>(1, n / 16), 2,
                                    rng);
  const auto input = uniform_labeling(forest, 0);
  const auto ids = random_distinct_ids(forest, 3, rng);
  HalfEdgeLabeling output;
  const bench::ObsCounters obs_counters;
  for (auto _ : state) {
    output = run_ball_algorithm(*algorithm, forest, input, ids);
    lcl::bench::keep(output);
  }
  if (!is_correct_solution(problem, forest, input, output)) {
    state.SkipWithError("invalid synthesized solution");
  }
  bench::report_scales(state, n);
  obs_counters.report(state);
  state.counters["radius"] = algorithm->radius(n);
}
BENCHMARK(BM_RunSynthesizedOnForest)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace lcl

LCL_BENCH_MAIN();
